package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/learn"
	"repro/pkg/client"
)

// Runner executes one job to completion. It is the seam between the
// manager (lifecycle, persistence, parallelism) and the learning stack:
// the production runner builds a lab experiment from the job's spec and
// writes artifacts into job.Dir, while tests substitute fakes. The
// observer must receive the run's typed event stream (wire it through
// lab.WithObserver). Returning ctx.Err() after cancellation marks the
// job cancelled (or re-queued, if the cancellation came from shutdown);
// any other error marks it failed.
type Runner func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error)

// ManagerConfig configures a Manager.
type ManagerConfig struct {
	// Dir is the daemon data directory: the queue journal, the shared
	// query store, and per-job artifact directories all live under it.
	Dir string
	// Parallel bounds concurrently running jobs (default 1).
	Parallel int
	// Backend overrides the queue backend (default: FS journal under Dir).
	Backend Backend
	// Runner overrides job execution (default: NewRunner(Dir)).
	Runner Runner
	// DrainTimeout bounds how long Shutdown waits for running jobs before
	// cancelling and re-queueing them (default 30s).
	DrainTimeout time.Duration
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// Manager owns the job queue: it journals every lifecycle transition
// through the Backend, runs jobs with bounded parallelism, and
// reconstructs its state from the journal on startup — jobs that were
// pending or running when the previous process died re-enter the queue
// and run again, resuming from the shared query store.
type Manager struct {
	dir     string
	backend Backend
	runner  Runner
	hub     *Hub
	logf    func(string, ...any)

	drainTimeout time.Duration

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	pending  []string // FIFO of jobs awaiting a worker
	seq      int
	draining bool

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	started  time.Time
	resumed  int // jobs re-queued from the journal at startup
	finished atomic.Int64

	// Monotonic aggregate counters, bumped exactly once per finished job
	// (and rebuilt from the journal on restart). /v1/stats derives its
	// totals — including queries-per-second — from these instead of
	// re-summing mutable job summaries, so two concurrent scrapes always
	// agree and rates never drift with in-flight jobs.
	totQueries     atomic.Int64
	totSymbols     atomic.Int64
	totHits        atomic.Int64
	totEscalations atomic.Int64
	totBusyNanos   atomic.Int64
}

// recordTotals folds a finished job's summary into the monotonic
// aggregates.
func (m *Manager) recordTotals(s *Summary) {
	if s == nil {
		return
	}
	m.totQueries.Add(s.Queries)
	m.totSymbols.Add(s.Symbols)
	m.totHits.Add(s.Hits)
	m.totEscalations.Add(s.GuardEscalations)
	m.totBusyNanos.Add(int64(s.Duration))
}

// NewManager loads the journal, re-queues unfinished jobs, and starts
// the worker pool.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("server: manager needs a data dir")
	}
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	backend := cfg.Backend
	if backend == nil {
		var err error
		if backend, err = OpenFSBackend(cfg.Dir); err != nil {
			return nil, err
		}
	}
	runner := cfg.Runner
	if runner == nil {
		runner = NewRunner(cfg.Dir)
	}
	m := &Manager{
		dir:          cfg.Dir,
		backend:      backend,
		runner:       runner,
		hub:          NewHub(),
		logf:         cfg.Logf,
		drainTimeout: cfg.DrainTimeout,
		jobs:         map[string]*Job{},
		wake:         make(chan struct{}, 4096),
		stop:         make(chan struct{}),
		started:      time.Now(),
	}
	if err := m.replay(); err != nil {
		if cfg.Backend == nil {
			backend.Close()
		}
		return nil, err
	}
	for i := 0; i < cfg.Parallel; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Hub exposes the SSE fan-out hub.
func (m *Manager) Hub() *Hub { return m.hub }

// replay folds the journal into the job map and re-queues every job
// whose last transition was not terminal: those were in flight when the
// previous daemon died. The re-queue is itself journaled (as a pending
// transition) so attempts survive further crashes.
func (m *Manager) replay() error {
	recs, err := m.backend.Load()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		j, ok := m.jobs[rec.ID]
		if !ok {
			if rec.Spec == nil {
				continue // lost its birth record to a journal reset; unrecoverable
			}
			j = &Job{ID: rec.ID, Spec: *rec.Spec, Created: rec.At, Dir: m.jobDir(rec.ID)}
			m.jobs[rec.ID] = j
			m.order = append(m.order, rec.ID)
		}
		j.State = rec.State
		switch rec.State {
		case StateRunning:
			j.Attempts++
			j.Started = rec.At
		case StateDone, StateFailed, StateCancelled:
			j.Finished = rec.At
			j.Error = rec.Error
			j.Summary = rec.Summary
		}
		if n := seqOf(rec.ID); n > m.seq {
			m.seq = n
		}
	}
	for _, id := range m.order {
		j := m.jobs[id]
		if j.State.Terminal() {
			m.finished.Add(1)
			m.recordTotals(j.Summary)
			continue
		}
		if j.State == StateRunning {
			// The previous process died mid-job. Journal the demotion so the
			// record reflects reality even if we crash again before it runs.
			if err := m.backend.Append(Record{ID: id, State: StatePending, At: time.Now()}); err != nil {
				return err
			}
			j.State = StatePending
			m.resumed++
			m.logf("resume: re-queued %s (%s, attempt %d interrupted)", id, j.Spec.Kind, j.Attempts)
		}
		m.pending = append(m.pending, id)
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
	m.syncStateGauges()
	return nil
}

func seqOf(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

func (m *Manager) jobDir(id string) string {
	return filepath.Join(m.dir, "jobs", id)
}

// Submit validates, journals, and queues a new job, returning its ID.
// The birth record hits the journal before the job becomes visible to
// workers, so the journal can never show a job running before it
// existed. Submissions are refused while the manager is draining.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.seq++
	id := fmt.Sprintf("j%04d", m.seq)
	m.mu.Unlock()

	j := &Job{ID: id, Spec: spec, State: StatePending, Created: time.Now(), Dir: m.jobDir(id)}
	if err := m.backend.Append(Record{ID: id, State: StatePending, Spec: &spec, At: j.Created}); err != nil {
		return nil, fmt.Errorf("server: journal submission: %w", err)
	}
	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pending = append(m.pending, id)
	m.mu.Unlock()
	metricJobsSubmitted.Inc()
	m.syncStateGauges()
	m.hub.Publish(id, JobStateChanged{ID: id, State: StatePending})
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return j, nil
}

// ErrDraining is returned by Submit during graceful shutdown.
var ErrDraining = fmt.Errorf("server: draining, not accepting jobs")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = fmt.Errorf("server: no such job")

// Get returns a consistent status snapshot of one job.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// List returns status snapshots of every job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.statusLocked(m.jobs[id]))
	}
	return out
}

func (m *Manager) statusLocked(j *Job) Status {
	st := Status{
		ID:      j.ID,
		Kind:    j.Spec.Kind,
		State:   j.State,
		Spec:    j.Spec,
		Error:   j.Error,
		Summary: j.Summary,
		Created: j.Created,

		Attempts: j.Attempts,
	}
	if !j.Started.IsZero() {
		t := j.Started
		st.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		st.Finished = &t
	}
	if entries, err := os.ReadDir(j.Dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				st.Artifacts = append(st.Artifacts, e.Name())
			}
		}
		sort.Strings(st.Artifacts)
	}
	return st
}

// Artifact resolves a job artifact filename to its path, confirming it
// exists. Only base filenames are accepted.
func (m *Manager) Artifact(id, name string) (string, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return "", ErrNotFound
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("server: bad artifact name %q", name)
	}
	p := filepath.Join(j.Dir, name)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("server: artifact %s/%s: %w", id, name, err)
	}
	return p, nil
}

// Cancel cancels a job: a pending job goes terminal immediately, a
// running job has its context cancelled and goes terminal when the
// runner observes it. Cancelling a terminal job is a no-op reporting
// its state.
func (m *Manager) Cancel(id string) (State, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return "", ErrNotFound
	}
	switch j.State {
	case StatePending:
		j.cancelled = true
		j.State = StateCancelled
		j.Finished = time.Now()
		for i, pid := range m.pending {
			if pid == id {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.finished.Add(1)
		metricJobsFinished(StateCancelled).Inc()
		m.syncStateGauges()
		if err := m.backend.Append(Record{ID: id, State: StateCancelled, At: time.Now()}); err != nil {
			return StateCancelled, err
		}
		m.hub.Finish(id, JobStateChanged{ID: id, State: StateCancelled})
		return StateCancelled, nil
	case StateRunning:
		j.cancelled = true
		cancel := j.cancel
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return StateRunning, nil
	default:
		st := j.State
		m.mu.Unlock()
		return st, nil
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
		}
		for {
			m.mu.Lock()
			if m.draining || len(m.pending) == 0 {
				m.mu.Unlock()
				break
			}
			id := m.pending[0]
			m.pending = m.pending[1:]
			j := m.jobs[id]
			ctx, cancel := context.WithCancel(context.Background())
			j.State = StateRunning
			j.Started = time.Now()
			j.Attempts++
			j.cancel = cancel
			m.mu.Unlock()
			m.syncStateGauges()
			m.runJob(ctx, cancel, j)
		}
	}
}

// runJob executes one job and journals its outcome. A run that ends in
// ctx.Err() is either a user cancellation (terminal) or a shutdown
// drain — in the latter case the job is journaled back to pending so
// the next daemon resumes it.
func (m *Manager) runJob(ctx context.Context, cancel context.CancelFunc, j *Job) {
	defer cancel()
	if err := m.backend.Append(Record{ID: j.ID, State: StateRunning, At: j.Started}); err != nil {
		m.logf("journal %s running: %v", j.ID, err)
	}
	m.hub.Publish(j.ID, JobStateChanged{ID: j.ID, State: StateRunning})
	if err := os.MkdirAll(j.Dir, 0o755); err != nil {
		m.finish(j, nil, fmt.Errorf("artifact dir: %w", err))
		return
	}
	m.logf("run %s: %s (attempt %d)", j.ID, j.Spec.Kind, j.Attempts)

	summary, err := m.runner(ctx, j, m.hub.Observer(j.ID))

	if err != nil && ctx.Err() != nil {
		m.mu.Lock()
		userCancel := j.cancelled
		m.mu.Unlock()
		if !userCancel {
			// Shutdown drain: hand the job back to the queue for the next
			// process. The pending record makes the interruption durable.
			m.mu.Lock()
			j.State = StatePending
			j.cancel = nil
			m.mu.Unlock()
			if err := m.backend.Append(Record{ID: j.ID, State: StatePending, At: time.Now()}); err != nil {
				m.logf("journal %s requeue: %v", j.ID, err)
			}
			m.syncStateGauges()
			m.hub.Publish(j.ID, JobStateChanged{ID: j.ID, State: StatePending})
			m.logf("drain: re-queued %s mid-run", j.ID)
			return
		}
		m.finishAs(j, StateCancelled, summary, nil)
		return
	}
	m.finish(j, summary, err)
}

func (m *Manager) finish(j *Job, summary *Summary, err error) {
	if err != nil {
		m.finishAs(j, StateFailed, summary, err)
		return
	}
	m.finishAs(j, StateDone, summary, nil)
}

func (m *Manager) finishAs(j *Job, state State, summary *Summary, err error) {
	now := time.Now()
	m.mu.Lock()
	j.State = state
	j.Finished = now
	j.Summary = summary
	j.cancel = nil
	if err != nil {
		j.Error = err.Error()
	}
	m.mu.Unlock()
	m.finished.Add(1)
	m.recordTotals(summary)
	metricJobsFinished(state).Inc()
	m.syncStateGauges()
	rec := Record{ID: j.ID, State: state, Summary: summary, At: now}
	if err != nil {
		rec.Error = err.Error()
	}
	if aerr := m.backend.Append(rec); aerr != nil {
		m.logf("journal %s %s: %v", j.ID, state, aerr)
	}
	m.hub.Finish(j.ID, JobStateChanged{ID: j.ID, State: state, Error: rec.Error})
	m.logf("done %s: %s", j.ID, state)
}

// Draining reports whether Shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown drains the manager: new submissions are refused, running
// jobs get up to the drain timeout (bounded further by ctx) to finish,
// and whatever is still running is then cancelled and journaled back to
// pending so the next daemon resumes it. The backend is closed last.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	m.mu.Unlock()
	close(m.stop)

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()

	timer := time.NewTimer(m.drainTimeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		m.cancelRunning()
		<-done
	case <-ctx.Done():
		m.cancelRunning()
		<-done
	}
	return m.backend.Close()
}

// cancelRunning cancels every running job's context; runJob observes
// the cancellation and (absent a user cancel flag) re-queues the job.
func (m *Manager) cancelRunning() {
	m.mu.Lock()
	var cancels []func()
	for _, j := range m.jobs {
		if j.State == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Stats is the /v1/stats payload. See client.Stats.
type Stats = client.Stats

// SummaryTotals aggregates the learning counters across finished jobs.
// See client.SummaryTotals.
type SummaryTotals = client.SummaryTotals

// Stats snapshots the manager. The totals (and the q/s rate derived
// from them) come from the monotonic finish-time counters, so they only
// ever grow and concurrent scrapes agree; the queue-shape map is the
// one instantaneous part.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Uptime:   time.Since(m.started).Round(time.Millisecond).String(),
		Jobs:     map[State]int{},
		Resumed:  m.resumed,
		Draining: m.draining,
	}
	for _, j := range m.jobs {
		st.Jobs[j.State]++
	}
	m.mu.Unlock()
	st.Finished = m.finished.Load()
	totals := SummaryTotals{
		Queries:          m.totQueries.Load(),
		Symbols:          m.totSymbols.Load(),
		Hits:             m.totHits.Load(),
		GuardEscalations: m.totEscalations.Load(),
	}
	busy := time.Duration(m.totBusyNanos.Load())
	totals.BusySeconds = busy.Seconds()
	if denom := totals.Queries + totals.Hits; denom > 0 {
		totals.HitRate = float64(totals.Hits) / float64(denom)
	}
	if busy > 0 {
		totals.QueriesPerSec = float64(totals.Queries) / busy.Seconds()
	}
	st.Totals = totals
	st.Hub = m.hub.Stats()
	return st
}
