package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/learn"
	"repro/pkg/client"
)

// hubHistory bounds the per-job event history replayed to late
// subscribers. A full learn emits a few hundred events (rounds, cache
// snapshots, guard escalations); keeping the most recent 1024 means a
// subscriber attaching after completion still sees the whole story for
// typical jobs, and a bounded tail for pathological ones.
const hubHistory = 1024

// Hub fans each job's typed event stream (learn.Observer) out to any
// number of SSE subscribers. Publishing never blocks: a subscriber whose
// buffer is full has the event dropped and the drop counted — a slow
// client costs itself fidelity, never the learning run or its sibling
// subscribers. Every topic keeps a bounded history so subscribers that
// attach late (or re-attach after a disconnect) replay what they missed.
type Hub struct {
	mu     sync.Mutex
	topics map[string]*topic

	published atomic.Int64 // events accepted into the hub
	dropped   atomic.Int64 // events lost to slow subscribers
	subs      atomic.Int64 // currently attached subscribers
}

type topic struct {
	history []learn.Event // bounded; oldest dropped first
	closed  bool          // job reached a terminal state
	final   *JobStateChanged
	subs    map[*Subscriber]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{topics: map[string]*topic{}}
}

func (h *Hub) topicLocked(jobID string) *topic {
	t, ok := h.topics[jobID]
	if !ok {
		t = &topic{subs: map[*Subscriber]struct{}{}}
		h.topics[jobID] = t
	}
	return t
}

// Observer returns the learn.Observer that publishes a job's events into
// the hub; the manager installs it on every run via lab.WithObserver. It
// is safe for concurrent use (pool workers emit events from many
// goroutines).
func (h *Hub) Observer(jobID string) learn.Observer {
	return learn.ObserverFunc(func(e learn.Event) { h.Publish(jobID, e) })
}

// Publish appends e to the job's history and offers it to every
// subscriber without blocking.
func (h *Hub) Publish(jobID string, e learn.Event) {
	h.published.Add(1)
	metricSSEPublished.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topicLocked(jobID)
	if len(t.history) >= hubHistory {
		copy(t.history, t.history[1:])
		t.history[len(t.history)-1] = e
	} else {
		t.history = append(t.history, e)
	}
	for s := range t.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
			metricSSEDropped.Inc()
		}
	}
}

// Finish publishes the terminal state event and closes the topic: every
// subscriber's channel is closed after the events already queued, and
// future subscribers get the history (ending in the terminal event)
// followed immediately by a closed channel — an SSE client attaching
// after completion replays the run and returns.
func (h *Hub) Finish(jobID string, final JobStateChanged) {
	h.Publish(jobID, final)
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topicLocked(jobID)
	t.closed = true
	t.final = &final
	for s := range t.subs {
		delete(t.subs, s)
		close(s.ch)
		h.subs.Add(-1)
		metricSSESubscribers.Dec()
	}
}

// Subscriber is one attached event consumer. Receive from C until it is
// closed (job finished or hub shut down), then check Dropped for how
// many events the subscription lost to its own backpressure.
type Subscriber struct {
	hub     *Hub
	jobID   string
	ch      chan learn.Event
	dropped atomic.Int64
	once    sync.Once
}

// Subscribe attaches to a job's event stream with the given channel
// buffer. The returned backlog is the event history at attach time —
// deliver it first, then range over C; the two never overlap and no
// event between them is lost (history snapshot and registration are one
// atomic step). Close the subscriber when done.
func (h *Hub) Subscribe(jobID string, buffer int) (backlog []learn.Event, s *Subscriber) {
	if buffer < 1 {
		buffer = 1
	}
	s = &Subscriber{hub: h, jobID: jobID, ch: make(chan learn.Event, buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topicLocked(jobID)
	backlog = append([]learn.Event(nil), t.history...)
	if t.closed {
		close(s.ch) // replay the backlog, then the stream ends immediately
		return backlog, s
	}
	t.subs[s] = struct{}{}
	h.subs.Add(1)
	metricSSESubscribers.Inc()
	return backlog, s
}

// C is the live event channel; it is closed when the job finishes.
func (s *Subscriber) C() <-chan learn.Event { return s.ch }

// Dropped counts events this subscriber lost by not draining C fast
// enough.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Close detaches the subscriber; its channel is closed. Safe to call
// multiple times, and after Finish already detached it.
func (s *Subscriber) Close() {
	s.once.Do(func() {
		s.hub.mu.Lock()
		defer s.hub.mu.Unlock()
		t, ok := s.hub.topics[s.jobID]
		if !ok {
			return
		}
		if _, attached := t.subs[s]; attached {
			delete(t.subs, s)
			close(s.ch)
			s.hub.subs.Add(-1)
			metricSSESubscribers.Dec()
		}
	})
}

// HubStats is the hub's observability snapshot, served under /v1/stats.
// See client.HubStats.
type HubStats = client.HubStats

// Stats snapshots the hub counters.
func (h *Hub) Stats() HubStats {
	return HubStats{
		Subscribers: h.subs.Load(),
		Published:   h.published.Load(),
		Dropped:     h.dropped.Load(),
	}
}
