package server

import "repro/internal/metrics"

// Process-wide daemon metric families, served by GET /metrics alongside
// the learn/guard/transport/netem families the lower layers publish.
var (
	metricJobsSubmitted = metrics.Default().Counter("prognosisd_jobs_submitted_total",
		"Jobs accepted by POST /v1/jobs.")
	metricSSEPublished = metrics.Default().Counter("prognosisd_sse_events_published_total",
		"Events accepted into the SSE fan-out hub.")
	metricSSEDropped = metrics.Default().Counter("prognosisd_sse_events_dropped_total",
		"Events lost to slow SSE subscribers.")
	metricSSESubscribers = metrics.Default().Gauge("prognosisd_sse_subscribers",
		"Currently attached SSE subscribers.")
	metricMonitorCycles = metrics.Default().Counter("prognosisd_monitor_cycles_total",
		"Completed monitor cycles (every manifest cell warm-relearned once).")
	metricMonitorDrift = metrics.Default().Counter("prognosisd_monitor_drift_alarms_total",
		"Drift alarms raised with a live-confirmed witness.")
)

// metricJobsFinished resolves the per-terminal-state finished counter.
func metricJobsFinished(state State) *metrics.Counter {
	return metrics.Default().CounterWith("prognosisd_jobs_finished_total",
		"Jobs that reached a terminal state.", []string{"state"}, []string{string(state)})
}

// metricJobsState resolves the per-state queue-shape gauge.
func metricJobsState(state State) *metrics.Gauge {
	return metrics.Default().GaugeWith("prognosisd_jobs",
		"Jobs currently in each lifecycle state.", []string{"state"}, []string{string(state)})
}

// syncStateGauges recounts the queue shape into the per-state gauges.
// Called after every lifecycle transition; the job map is queue-sized,
// so the recount is cheap and immune to increment/decrement drift.
func (m *Manager) syncStateGauges() {
	counts := map[State]int{
		StatePending: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		counts[j.State]++
	}
	m.mu.Unlock()
	for state, n := range counts {
		metricJobsState(state).Set(float64(n))
	}
}
