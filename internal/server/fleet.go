package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fleet"
	"repro/internal/learncfg"
	"repro/pkg/client"
)

// This file is the daemon's fleet surface. Two halves:
//
//   - Worker side (always mounted): GET /v1/fleet/store and
//     /v1/fleet/store/{key} expose the shared query store's run keys and
//     raw jsonlog bytes, which is what the coordinator's merge stage
//     pulls after a campaign.
//   - Coordinator side (mounted by WithCoordinator): worker registration
//     and heartbeats, the fleet status snapshot, and sharded-campaign
//     submission/tracking, delegating to internal/fleet.Coordinator.

// storeDir is the daemon's shared query-store directory — the same path
// NewRunner injects into spec configs.
func (s *Server) storeDir() string {
	return filepath.Join(s.mgr.dir, "store")
}

// storeKeys lists the run keys present in the shared store (the base
// names of its .log files), sorted.
func (s *Server) storeKeys(w http.ResponseWriter, r *http.Request) {
	entries, err := os.ReadDir(s.storeDir())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	keys := []string{}
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".log") && !e.IsDir() {
			keys = append(keys, strings.TrimSuffix(name, ".log"))
		}
	}
	sort.Strings(keys)
	writeJSON(w, http.StatusOK, map[string]any{"keys": keys})
}

// storeLog serves one run key's raw query log. Keys are base names by
// construction (lab's run keys are filename-safe); anything resembling a
// path is rejected before it touches the filesystem.
func (s *Server) storeLog(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" || key != filepath.Base(key) || strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad store key %q", key))
		return
	}
	path := filepath.Join(s.storeDir(), key+".log")
	if _, err := os.Stat(path); err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no store log for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func (s *Server) fleetJoin(w http.ResponseWriter, r *http.Request) {
	var info client.WorkerInfo
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&info); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad join body: %w", err))
		return
	}
	if err := s.co.Join(info); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "joined"})
}

func (s *Server) fleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var beat struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&beat); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad heartbeat body: %w", err))
		return
	}
	if err := s.co.Heartbeat(beat.Name); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, fleet.ErrUnknownWorker) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) fleetStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.co.Status())
}

func (s *Server) fleetSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	// Like job submission, a sparse body overrides the learn defaults
	// only where it names fields, and unknown fields are rejected.
	spec := client.FleetCampaignSpec{Config: learncfg.Default(learncfg.Defaults{})}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad campaign body: %w", err))
		return
	}
	st, err := s.co.SubmitCampaign(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/fleet/campaigns/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) fleetCampaign(w http.ResponseWriter, r *http.Request) {
	st, err := s.co.Campaign(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
