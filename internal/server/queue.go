package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/jsonlog"
)

// queueFormat / queueVersion identify the job-queue journal format (the
// header line of every journal). A journal written by a future version
// is reset rather than half-understood.
const (
	queueFormat  = "prognosisd-job-queue"
	queueVersion = 1
)

// Record is one journaled job-lifecycle transition. The first record of
// a job carries its Spec; every later record carries only the new state
// (plus the error or summary a terminal transition produced). Folding a
// job's records in journal order yields its current state, which is how
// a restarted daemon reconstructs the queue: jobs whose last record is
// pending or running were in flight when the previous process died and
// are re-queued.
type Record struct {
	ID      string    `json:"id"`
	State   State     `json:"state"`
	Spec    *Spec     `json:"spec,omitempty"`
	Error   string    `json:"error,omitempty"`
	Summary *Summary  `json:"summary,omitempty"`
	At      time.Time `json:"at"`
}

// Backend journals job lifecycle transitions durably. Implementations
// must make Append atomic per record (a crash mid-append loses at most
// the record in flight, never corrupts the prefix) and are safe for
// concurrent use. The FS backend is the default; a KV twin can slot in
// behind the same interface.
type Backend interface {
	// Load replays every journaled transition in append order.
	Load() ([]Record, error)
	// Append durably records one transition.
	Append(Record) error
	Close() error
}

// FSBackend is the filesystem queue backend: one crash-tolerant jsonlog
// journal (queue.log) holding every transition as a JSON line. Appends
// are single complete-line writes; a truncated or corrupted tail — a
// daemon killed mid-append — is discarded on the next Load, costing at
// most the transition in flight (whose job then simply replays from its
// previous state).
type FSBackend struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFSBackend opens (creating if needed) the queue journal under dir.
func OpenFSBackend(dir string) (*FSBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: queue dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "queue.log"), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: queue journal: %w", err)
	}
	// A fresh journal needs its header before the first append lands;
	// anything else is validated (and reset if foreign) by Load.
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if err := jsonlog.Reset(f, queueFormat, queueVersion); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FSBackend{f: f}, nil
}

// Load implements Backend: the longest valid journal prefix, in order.
// A foreign or future-versioned journal is reset to empty rather than
// misread.
func (b *FSBackend) Load() ([]Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var recs []Record
	ok, err := jsonlog.Recover(b.f, queueFormat, queueVersion, func(line []byte) bool {
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.ID == "" || !rec.State.Valid() {
			return false
		}
		recs = append(recs, rec)
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("server: recover queue journal: %w", err)
	}
	if !ok {
		recs = nil
		if err := jsonlog.Reset(b.f, queueFormat, queueVersion); err != nil {
			return nil, err
		}
	}
	return recs, nil
}

// Append implements Backend: one complete line per record.
func (b *FSBackend) Append(rec Record) error {
	line, err := jsonlog.Marshal(rec)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err = b.f.Write(line)
	return err
}

// Close implements Backend.
func (b *FSBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Close()
}
