package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/fleet"
	"repro/internal/learn"
	"repro/internal/learncfg"
	"repro/internal/metrics"
)

// Server is the HTTP face of the daemon: a Go 1.24 pattern-routed mux
// over the job manager. All endpoints speak JSON except the SSE event
// stream and the raw artifact downloads.
type Server struct {
	mgr *Manager
	co  *fleet.Coordinator
	mux *http.ServeMux
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithCoordinator mounts the fleet-coordinator surface (worker
// join/heartbeat, fleet status, sharded campaigns) on the server —
// `prognosisd -coordinator` mode.
func WithCoordinator(co *fleet.Coordinator) ServerOption {
	return func(s *Server) { s.co = co }
}

// NewServer wires the API routes over mgr.
func NewServer(mgr *Manager, opts ...ServerOption) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs", s.list)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.get)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/model", s.model)
	s.mux.HandleFunc("GET /v1/jobs/{id}/witness", s.witness)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	s.mux.HandleFunc("GET /v1/stats", s.stats)
	// Worker-side fleet surface, always mounted: the coordinator's merge
	// stage reads the shared query store through it.
	s.mux.HandleFunc("GET /v1/fleet/store", s.storeKeys)
	s.mux.HandleFunc("GET /v1/fleet/store/{key}", s.storeLog)
	if s.co != nil {
		s.mux.HandleFunc("POST /v1/fleet/join", s.fleetJoin)
		s.mux.HandleFunc("POST /v1/fleet/heartbeat", s.fleetHeartbeat)
		s.mux.HandleFunc("GET /v1/fleet/status", s.fleetStatus)
		s.mux.HandleFunc("POST /v1/fleet/campaigns", s.fleetSubmitCampaign)
		s.mux.HandleFunc("GET /v1/fleet/campaigns/{id}", s.fleetCampaign)
	}
	// The unified metrics plane: every subsystem's process-wide counters
	// (learn pool, guard, transport, netem, job manager, SSE hub,
	// monitor, fleet) in Prometheus text exposition.
	s.mux.Handle("GET /metrics", metrics.Default().Handler())
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// submit decodes a job spec in two passes: the first probes the kind so
// the config can start from that kind's CLI defaults (a sparse body
// overrides only what it names, exactly like passing a few flags), the
// second is strict — unknown fields are rejected rather than silently
// ignored, since a typoed knob that falls back to its default is the
// worst failure mode a learning service can have.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job body: %w", err))
		return
	}
	spec := Spec{Config: learncfg.Default(defaultsFor(probe.Kind))}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job body: %w", err))
		return
	}
	job, err := s.mgr.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrDraining) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	st, _ := s.mgr.Get(job.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	prev, err := s.mgr.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "was": prev})
}

// events streams a job's typed event stream as SSE: first the buffered
// history (so a subscriber attaching after completion still replays the
// run), then live events until the job finishes or the client leaves. A
// subscriber that cannot keep up has events dropped, never buffered
// unboundedly — the terminal job_state event closes the stream either
// way, and /v1/stats accounts the drops.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.mgr.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	backlog, sub := s.mgr.Hub().Subscribe(id, 256)
	defer sub.Close()
	for _, e := range backlog {
		writeSSE(w, e)
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			writeSSE(w, e)
			flusher.Flush()
		}
	}
}

// writeSSE renders one event in SSE framing: the kind as the event name,
// the payload as one JSON data line.
func writeSSE(w http.ResponseWriter, e learn.Event) {
	data, err := json.Marshal(e)
	if err != nil {
		data = []byte(`{}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind(), data)
}

// model serves a learn job's learned model (or a diff's side A/B via
// ?side=b). ?format=dot re-renders the stored JSON through the DOT
// codec; the default is the raw stored JSON, byte-identical to what
// `prognosis learn -save` writes for the same configuration.
func (s *Server) model(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name := "model.json"
	switch side := r.URL.Query().Get("side"); side {
	case "":
		// Learn/check jobs write model.json; diff jobs write model_a/_b.
		if _, err := s.mgr.Artifact(id, name); err != nil {
			name = "model_a.json"
		}
	case "a":
		name = "model_a.json"
	case "b":
		name = "model_b.json"
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("side %q (want a or b)", side))
		return
	}
	path, err := s.mgr.Artifact(id, name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		http.ServeFile(w, r, path)
	case "dot":
		model, err := analysis.LoadModel(path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, model.DOT())
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("format %q (want json or dot)", format))
	}
}

// witness serves the job's witness/report artifact as plain text.
func (s *Server) witness(w http.ResponseWriter, r *http.Request) {
	path, err := s.mgr.Artifact(r.PathValue("id"), "witness.txt")
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	http.ServeFile(w, r, path)
}

// healthz is the liveness/readiness probe: 200 while accepting jobs,
// 503 once draining.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Stats())
}
