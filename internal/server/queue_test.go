package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func learnSpec(target string) Spec {
	s := Spec{Kind: KindLearn, Target: target}
	s.Config.Learner = "ttt"
	s.Config.Seed = 13
	s.Config.Workers = 1
	return s
}

// TestFSBackendRoundTrip: records append and load back in order, across
// a close/reopen.
func TestFSBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := learnSpec("tcp")
	recs := []Record{
		{ID: "j0001", State: StatePending, Spec: &spec, At: time.Now()},
		{ID: "j0001", State: StateRunning, At: time.Now()},
		{ID: "j0001", State: StateDone, Summary: &Summary{States: 4}, At: time.Now()},
	}
	for _, r := range recs {
		if err := b.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b, err = OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.ID != "j0001" || r.State != recs[i].State {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if got[0].Spec == nil || got[0].Spec.Target != "tcp" {
		t.Fatalf("birth record lost its spec: %+v", got[0])
	}
	if got[2].Summary == nil || got[2].Summary.States != 4 {
		t.Fatalf("terminal record lost its summary: %+v", got[2])
	}
}

// TestFSBackendSurvivesTruncatedTail: a daemon killed mid-append leaves a
// partial line; recovery keeps the complete prefix and appends continue.
func TestFSBackendSurvivesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := learnSpec("tcp")
	if err := b.Append(Record{ID: "j0001", State: StatePending, Spec: &spec, At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: a half-written record at the tail.
	path := filepath.Join(dir, "queue.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j0002","state":"run`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err = OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "j0001" {
		t.Fatalf("recovered %+v, want the single complete record", got)
	}
	// The journal keeps working after recovery.
	if err := b.Append(Record{ID: "j0002", State: StatePending, Spec: &spec, At: time.Now()}); err != nil {
		t.Fatal(err)
	}
	got, err = b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].ID != "j0002" {
		t.Fatalf("post-recovery append lost: %+v", got)
	}
}

// TestFSBackendResetsForeignJournal: an unrecognized header means some
// other tool's file — start fresh rather than misread it.
func TestFSBackendResetsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.log")
	if err := os.WriteFile(path, []byte("not a queue journal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("foreign journal yielded records: %+v", got)
	}
}
