package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/learncfg"
)

// This file is the continuous drift monitor: a scheduled (or one-shot)
// cycle that warm-relearns every (target × config) cell of a regression
// manifest, records time-versioned model snapshots with lineage — which
// query-log version produced which model version, appended to a
// crash-tolerant JSONL journal — and raises drift alarms carrying the
// shortest distinguishing witness. An alarm only fires after the witness
// is replayed against the live target and the divergence reproduces;
// unconfirmed drift (a transient flaky learn) is journaled but does not
// advance the baseline or alarm. Alarms reach subscribers as
// "drift_alarm" SSE events and the prognosisd_monitor_* metric
// families. See docs/MONITORING.md.

// MonitorOptions configures one monitor cycle.
type MonitorOptions struct {
	// Manifest is the regression manifest naming the monitored cells
	// ("" = the daemon default). Targets optionally restricts it to a
	// comma-separated subset.
	Manifest string
	Targets  string
	// DataDir is the monitor's state root: lineage and model snapshots
	// live under DataDir/monitor, and relearns warm-start from the shared
	// query store under DataDir/store — the same store daemon jobs use,
	// which is what makes an unchanged cell's cycle cost zero live
	// queries.
	DataDir string
	// Workers is the membership-query concurrency per relearn (default 1).
	Workers int
	// Witnesses bounds the distinguishing traces collected per drifted
	// cell (default 3).
	Witnesses int
	// Votes is the witness replay's per-position majority vote count
	// (default 5).
	Votes int
}

func (o *MonitorOptions) defaults() {
	if o.Manifest == "" {
		o.Manifest = defaultManifest
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Witnesses < 1 {
		o.Witnesses = 3
	}
	if o.Votes < 1 {
		o.Votes = 5
	}
}

// cellOutcome is what one cell's cycle concluded, for the report.
type cellOutcome struct {
	rec   LineageRecord
	alarm *DriftAlarm
	note  string
}

// RunMonitorCycle executes one monitor cycle: every selected manifest
// cell is warm-relearned, snapshotted into the lineage journal, and
// compared against its previous snapshot. It returns the job summary
// and the human-readable cycle report (the witness artifact). obs, when
// non-nil, receives the relearns' typed event streams plus a DriftAlarm
// event per confirmed drift.
func RunMonitorCycle(ctx context.Context, opt MonitorOptions, obs learn.Observer) (*Summary, string, error) {
	opt.defaults()
	m, err := cli.LoadRegressManifest(opt.Manifest)
	if err != nil {
		return nil, "", err
	}
	selected, err := m.Filter(opt.Targets)
	if err != nil {
		return nil, "", err
	}
	monDir := filepath.Join(opt.DataDir, "monitor")
	snapDir := filepath.Join(monDir, "snapshots")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return nil, "", err
	}
	lin, err := OpenLineage(filepath.Join(monDir, "lineage.jsonl"))
	if err != nil {
		return nil, "", err
	}
	defer lin.Close()
	storeDir := filepath.Join(opt.DataDir, "store")

	sum := &Summary{RegressTargets: len(selected)}
	var buf strings.Builder
	for _, rt := range selected {
		out, err := monitorCell(ctx, rt, lin, snapDir, storeDir, opt, obs)
		if out.rec.Cell != "" {
			sum.Queries += out.rec.LiveQueries
		}
		if err != nil {
			return sum, buf.String(), fmt.Errorf("cell %s: %w", rt.Name, err)
		}
		fmt.Fprintf(&buf, "monitor %s: %s — model v%d, log v%d, %d live queries\n",
			rt.Name, out.note, out.rec.ModelVersion, out.rec.LogVersion, out.rec.LiveQueries)
		if out.alarm != nil {
			sum.Alarms++
			sum.Drifted = append(sum.Drifted, rt.Name)
			metricMonitorDrift.Inc()
			if obs != nil {
				obs.OnEvent(*out.alarm)
			}
			fmt.Fprintf(&buf, "  DRIFT ALARM: witness %v confirmed live\n  %s\n",
				out.alarm.Witness, strings.ReplaceAll(strings.TrimSpace(out.alarm.Diff), "\n", "\n  "))
		} else if out.rec.Drift {
			fmt.Fprintf(&buf, "  drift observed but NOT confirmed live (transient) — baseline kept\n")
		}
	}
	metricMonitorCycles.Inc()
	return sum, buf.String(), nil
}

// monitorCell runs one cell's cycle: warm relearn, lineage snapshot,
// drift comparison, and — when the models diverge — live witness
// confirmation.
func monitorCell(ctx context.Context, rt cli.RegressTarget, lin *Lineage,
	snapDir, storeDir string, opt MonitorOptions, obs learn.Observer) (cellOutcome, error) {
	cfg := learncfg.Config{
		Learner: "ttt", Seed: rt.Seed, Conformance: rt.Conformance,
		Loss: rt.Loss, Duplicate: rt.Duplicate, Reorder: rt.Reorder,
		Warmup: rt.Warmup, Workers: opt.Workers, Store: storeDir,
	}
	opts, err := cfg.Options()
	if err != nil {
		return cellOutcome{}, err
	}
	if obs != nil {
		opts = append(opts, lab.WithObserver(obs))
	}
	exp, err := lab.NewExperiment(rt.Name, opts...)
	if err != nil {
		return cellOutcome{}, err
	}
	defer exp.Close()
	res, err := exp.Learn(ctx)
	if err != nil {
		return cellOutcome{}, err
	}

	rec := LineageRecord{
		Cell:        rt.Name,
		LogVersion:  int64(exp.StoreEntries()),
		LiveQueries: res.Metrics().Learner.Queries,
		At:          time.Now(),
	}
	prev, havePrev := lin.Latest(rt.Name)

	// Nondeterministic outcome: the §5 halt is itself a live observation,
	// so a model→nondet (or nondet→model) transition is confirmed drift
	// by construction — no replay needed.
	if res.Nondet != nil {
		rec.Nondet = true
		switch {
		case !havePrev:
			rec.ModelVersion = 1
			return cellOutcome{rec: rec, note: "baseline recorded (nondet)"}, lin.Append(rec)
		case prev.Nondet:
			rec.ModelVersion = prev.ModelVersion
			return cellOutcome{rec: rec, note: "OK (still nondet)"}, lin.Append(rec)
		default:
			rec.ModelVersion = prev.ModelVersion + 1
			rec.Drift, rec.Confirmed = true, true
			rec.Witness = res.Nondet.Word
			alarm := &DriftAlarm{
				Cell: rt.Name, Witness: rec.Witness, Confirmed: true,
				Diff:         fmt.Sprintf("target became nondeterministic: %v", res.Nondet),
				ModelVersion: rec.ModelVersion, LogVersion: rec.LogVersion,
			}
			return cellOutcome{rec: rec, alarm: alarm, note: "DRIFT (became nondet)"}, lin.Append(rec)
		}
	}

	learned := res.Model()
	learned.Name = rt.Name

	// First sight of a model for this cell: either a fresh baseline or a
	// nondet→model transition.
	if !havePrev || prev.Model == "" {
		version := 1
		note := "baseline recorded"
		var alarm *DriftAlarm
		if havePrev {
			version = prev.ModelVersion + 1
			rec.Drift, rec.Confirmed = true, true
			note = "DRIFT (was nondet, learned a model)"
			alarm = &DriftAlarm{
				Cell: rt.Name, Confirmed: true,
				Diff:         fmt.Sprintf("previously nondeterministic; now a deterministic %d-state model", learned.States()),
				ModelVersion: version, LogVersion: rec.LogVersion,
			}
		}
		rec.ModelVersion = version
		rec.Model, err = saveSnapshot(learned, snapDir, rt.Name, version)
		if err != nil {
			return cellOutcome{}, err
		}
		return cellOutcome{rec: rec, alarm: alarm, note: note}, lin.Append(rec)
	}

	baseline, err := analysis.LoadModel(filepath.Join(snapDir, prev.Model))
	if err != nil {
		return cellOutcome{}, fmt.Errorf("load baseline snapshot: %w", err)
	}
	baseline.Name = fmt.Sprintf("%s@v%d", rt.Name, prev.ModelVersion)
	drift, err := analysis.CompareGolden(learned, baseline, opt.Witnesses)
	if err != nil {
		return cellOutcome{}, err
	}
	if drift == nil {
		rec.ModelVersion = prev.ModelVersion
		rec.Model = prev.Model
		return cellOutcome{rec: rec, note: "OK (unchanged)"}, lin.Append(rec)
	}

	// The models diverge. Before alarming, replay the shortest witness
	// against the live target (per-position majority over opt.Votes
	// runs): only a reproduced divergence is real drift — a flaky learn
	// that cannot be reproduced keeps the baseline and alarms nobody.
	w := drift.Witness
	rec.Drift = true
	rec.Witness = w.Word
	live, err := exp.Replay(ctx, w.Word, opt.Votes)
	if err != nil {
		return cellOutcome{}, fmt.Errorf("replay witness: %w", err)
	}
	if sameOutputs(live, w.OutputsB) {
		// The live target still answers like the baseline: transient.
		rec.ModelVersion = prev.ModelVersion
		rec.Model = prev.Model
		return cellOutcome{rec: rec, note: "drift NOT confirmed"}, lin.Append(rec)
	}
	rec.Confirmed = true
	rec.ModelVersion = prev.ModelVersion + 1
	rec.Model, err = saveSnapshot(learned, snapDir, rt.Name, rec.ModelVersion)
	if err != nil {
		return cellOutcome{}, err
	}
	alarm := &DriftAlarm{
		Cell: rt.Name, Witness: w.Word,
		Expected: w.OutputsB, Got: live, Confirmed: true,
		Diff:         drift.String(),
		ModelVersion: rec.ModelVersion, LogVersion: rec.LogVersion,
	}
	return cellOutcome{rec: rec, alarm: alarm, note: "DRIFT confirmed"}, lin.Append(rec)
}

// saveSnapshot writes one time-versioned model snapshot and returns its
// filename (relative to snapDir, as lineage records reference it).
func saveSnapshot(m *analysis.Model, snapDir, cell string, version int) (string, error) {
	name := fmt.Sprintf("%s.v%d.json", cell, version)
	if err := m.Save(filepath.Join(snapDir, name)); err != nil {
		return "", err
	}
	return name, nil
}

func sameOutputs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
