package server

import (
	"testing"

	"repro/internal/learn"
)

// TestHubSlowSubscriberDrops: a subscriber that never drains loses
// events — counted, never blocking the publisher — while a fast sibling
// on the same topic sees everything.
func TestHubSlowSubscriberDrops(t *testing.T) {
	h := NewHub()
	_, slow := h.Subscribe("j1", 1) // buffer of one, never drained
	defer slow.Close()
	_, fast := h.Subscribe("j1", 256)
	defer fast.Close()

	const n = 100
	for i := 0; i < n; i++ {
		h.Publish("j1", learn.RoundStarted{Round: i})
	}

	if got := slow.Dropped(); got != n-1 {
		t.Fatalf("slow subscriber dropped %d, want %d (buffer of 1)", got, n-1)
	}
	if got := fast.Dropped(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	for i := 0; i < n; i++ {
		e := <-fast.C()
		if e.(learn.RoundStarted).Round != i {
			t.Fatalf("fast subscriber saw %v at position %d", e, i)
		}
	}
	st := h.Stats()
	if st.Published != n || st.Dropped != n-1 {
		t.Fatalf("hub stats = %+v", st)
	}
}

// TestHubFinishClosesAndReplays: Finish delivers the terminal event to
// live subscribers and closes them; a subscriber attaching afterwards
// replays the bounded history and gets an immediately closed channel.
func TestHubFinishClosesAndReplays(t *testing.T) {
	h := NewHub()
	_, live := h.Subscribe("j1", 16)
	defer live.Close()

	h.Publish("j1", learn.HypothesisReady{Round: 1, States: 3})
	h.Finish("j1", JobStateChanged{ID: "j1", State: StateDone})

	var got []learn.Event
	for e := range live.C() {
		got = append(got, e)
	}
	if len(got) != 2 || got[0].Kind() != "hypothesis_ready" || got[1].Kind() != "job_state" {
		t.Fatalf("live subscriber saw %v", got)
	}

	backlog, late := h.Subscribe("j1", 16)
	defer late.Close()
	if len(backlog) != 2 || backlog[1].Kind() != "job_state" {
		t.Fatalf("late backlog = %v", backlog)
	}
	if _, open := <-late.C(); open {
		t.Fatal("late subscriber's channel not closed")
	}
}

// TestHubHistoryBounded: the replay buffer keeps the most recent
// hubHistory events, dropping the oldest.
func TestHubHistoryBounded(t *testing.T) {
	h := NewHub()
	for i := 0; i < hubHistory+10; i++ {
		h.Publish("j1", learn.RoundStarted{Round: i})
	}
	backlog, s := h.Subscribe("j1", 1)
	defer s.Close()
	if len(backlog) != hubHistory {
		t.Fatalf("history length %d, want %d", len(backlog), hubHistory)
	}
	if first := backlog[0].(learn.RoundStarted).Round; first != 10 {
		t.Fatalf("oldest retained event is round %d, want 10", first)
	}
}

// TestHubCloseDetaches: closing a subscriber stops deliveries and is
// idempotent, also after Finish already detached it.
func TestHubCloseDetaches(t *testing.T) {
	h := NewHub()
	_, s := h.Subscribe("j1", 1)
	s.Close()
	s.Close()
	h.Publish("j1", learn.RoundStarted{Round: 1})
	if s.Dropped() != 0 {
		t.Fatal("closed subscriber still receiving")
	}
	if h.Stats().Subscribers != 0 {
		t.Fatalf("subscriber count = %d", h.Stats().Subscribers)
	}

	_, s2 := h.Subscribe("j1", 1)
	h.Finish("j1", JobStateChanged{ID: "j1", State: StateDone})
	s2.Close() // already detached by Finish; must not double-close
}
