package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func lineageRecord(cell string, version int) LineageRecord {
	return LineageRecord{
		Cell: cell, ModelVersion: version, LogVersion: int64(version * 10),
		Model: cell + ".v1.json", LiveQueries: 7, At: time.Unix(1700000000, 0).UTC(),
	}
}

// TestLineageRoundTrip: appended records survive a close/reopen and
// Latest returns the newest record per cell.
func TestLineageRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mon", "lineage.jsonl")
	lin, err := OpenLineage(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []LineageRecord{
		lineageRecord("tcp", 1), lineageRecord("google", 1), lineageRecord("tcp", 2),
	} {
		if err := lin.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lin.Close(); err != nil {
		t.Fatal(err)
	}

	lin, err = OpenLineage(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Close()
	if got := lin.Records(); len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	latest, ok := lin.Latest("tcp")
	if !ok || latest.ModelVersion != 2 {
		t.Fatalf("Latest(tcp) = %+v, %v; want version 2", latest, ok)
	}
	if _, ok := lin.Latest("quiche"); ok {
		t.Fatal("Latest(quiche) found a record in an unrelated journal")
	}
}

// TestLineageDiscardsCorruptTail mirrors the query store's crash
// contract: a journal whose tail was mangled mid-append recovers every
// complete record before the damage and keeps appending — for each of
// the ways a crash can mangle the tail.
func TestLineageDiscardsCorruptTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tail string
	}{
		{"truncated json", `{"cell":"tcp","model_ver`},
		{"garbage line", "\x00\x00not json at all\n"},
		{"valid json, wrong shape", `{"cell":"","model_version":0}` + "\n"},
		{"unterminated valid record", `{"cell":"tcp","model_version":3,"log_version":30,"at":"2023-11-14T22:13:20Z"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "lineage.jsonl")
			lin, err := OpenLineage(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := lin.Append(lineageRecord("tcp", 1)); err != nil {
				t.Fatal(err)
			}
			if err := lin.Append(lineageRecord("tcp", 2)); err != nil {
				t.Fatal(err)
			}
			if err := lin.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tc.tail)
			f.Close()

			lin, err = OpenLineage(path)
			if err != nil {
				t.Fatal(err)
			}
			recs := lin.Records()
			if len(recs) != 2 || recs[1].ModelVersion != 2 {
				t.Fatalf("recovered %+v, want the 2 intact records", recs)
			}
			// The journal stays appendable after the repair.
			if err := lin.Append(lineageRecord("tcp", 3)); err != nil {
				t.Fatal(err)
			}
			if err := lin.Close(); err != nil {
				t.Fatal(err)
			}
			lin, err = OpenLineage(path)
			if err != nil {
				t.Fatal(err)
			}
			defer lin.Close()
			if latest, _ := lin.Latest("tcp"); latest.ModelVersion != 3 {
				t.Fatalf("after repair+append, Latest = %+v, want version 3", latest)
			}
		})
	}
}

// TestLineageResetsForeignFile: a journal carrying a foreign format or a
// future version is reset empty rather than misread — same policy as the
// query store.
func TestLineageResetsForeignFile(t *testing.T) {
	for _, header := range []string{
		`{"format":"some-other-log","version":1}`,
		`{"format":"prognosisd-lineage","version":99}`,
		`not even json`,
	} {
		path := filepath.Join(t.TempDir(), "lineage.jsonl")
		content := header + "\n" + `{"cell":"tcp","model_version":1,"log_version":1,"at":"2023-11-14T22:13:20Z"}` + "\n"
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		lin, err := OpenLineage(path)
		if err != nil {
			t.Fatalf("header %q: %v", header, err)
		}
		if got := lin.Records(); len(got) != 0 {
			t.Fatalf("header %q: foreign journal yielded records %+v", header, got)
		}
		if err := lin.Append(lineageRecord("tcp", 1)); err != nil {
			t.Fatal(err)
		}
		lin.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), lineageFormat) || strings.Contains(string(data), "some-other-log") {
			t.Fatalf("header %q: reset journal still carries the foreign header:\n%s", header, data)
		}
	}
}
