// Package server implements prognosisd, the learning-as-a-service
// daemon: an HTTP/JSON API over an async job manager with a persistent
// FS-backed queue. Learn/diff/check/regress jobs are submitted as JSON
// bodies carrying the same learncfg.Config the CLI flags resolve
// through, run with bounded parallelism under per-job cancellable
// contexts, journal every lifecycle transition (so a killed daemon
// re-queues in-flight jobs on restart), stream the typed learning event
// stream over SSE through a fan-out hub with slow-subscriber drop
// accounting, and serve learned-model and witness artifacts from the
// job's artifact directory. See docs/SERVICE.md.
package server

import (
	"fmt"
	"time"

	"repro/internal/learncfg"
)

// Kind names a job's verb — the four prognosis subcommands the service
// exposes.
const (
	KindLearn   = "learn"
	KindDiff    = "diff"
	KindCheck   = "check"
	KindRegress = "regress"
)

// State is one stop of the job lifecycle state machine:
//
//	pending → running → done
//	                  ↘ failed
//	pending/running → cancelled        (DELETE /v1/jobs/{id})
//	running → pending                  (daemon shutdown/crash: re-queued)
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

func (s State) valid() bool {
	switch s {
	case StatePending, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is a job submission: the POST /v1/jobs body. Config carries the
// same knobs as the CLI flags and resolves through the same
// learncfg.Config builder, so a job body and a `prognosis` invocation
// cannot drift. Absent Config fields keep the per-kind defaults (diff
// jobs default to the mildly impaired 4-worker link, exactly like
// `prognosis diff`).
type Spec struct {
	Kind string `json:"kind"`
	// Target names the registry target of learn and check jobs.
	Target string `json:"target,omitempty"`
	// TargetA/TargetB name the two sides of a diff job.
	TargetA string          `json:"target_a,omitempty"`
	TargetB string          `json:"target_b,omitempty"`
	Config  learncfg.Config `json:"config"`
	// Witnesses bounds the distinguishing traces a diff collects (and a
	// regress writes per drifted target). Default 5.
	Witnesses int `json:"witnesses,omitempty"`
	// Replay confirms a diff's first witness against both live targets
	// (majority vote per step), like `prognosis diff`. Default true.
	Replay *bool `json:"replay,omitempty"`
	// Property is an extra LTLf property for check jobs; Depth bounds its
	// exploration (default 4).
	Property string `json:"property,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	// Manifest is the regression manifest path of regress jobs (resolved
	// on the daemon host; default internal/analysis/testdata/regress.json).
	// Targets optionally restricts it to a comma-separated subset.
	Manifest string `json:"manifest,omitempty"`
	Targets  string `json:"targets,omitempty"`
}

// replayWitness reports whether a diff job should replay its first
// witness (the Replay default is true).
func (s *Spec) replayWitness() bool { return s.Replay == nil || *s.Replay }

// defaultsFor returns the per-kind learncfg defaults, mirroring the CLI
// subcommands exactly.
func defaultsFor(kind string) learncfg.Defaults {
	switch kind {
	case KindDiff:
		return learncfg.Defaults{Conformance: 2, Loss: 0.02, Workers: 4}
	case KindCheck:
		return learncfg.Defaults{Conformance: 2}
	default:
		return learncfg.Defaults{}
	}
}

// Validate rejects specs no job can run, before anything is journaled.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindLearn, KindCheck:
		if s.Target == "" {
			return fmt.Errorf("%s job needs a target", s.Kind)
		}
		if _, err := learncfg.ParseTargets(s.Target); err != nil {
			return err
		}
		if s.TargetA != "" || s.TargetB != "" {
			return fmt.Errorf("%s job takes target, not target_a/target_b", s.Kind)
		}
	case KindDiff:
		if s.TargetA == "" || s.TargetB == "" {
			return fmt.Errorf("diff job needs target_a and target_b")
		}
		if _, err := learncfg.ParseTargets(s.TargetA + "," + s.TargetB); err != nil {
			return err
		}
	case KindRegress:
		if s.Target != "" || s.TargetA != "" || s.TargetB != "" {
			return fmt.Errorf("regress job selects targets with the targets field, not target/target_a/target_b")
		}
	case "":
		return fmt.Errorf("job needs a kind: learn, diff, check, or regress")
	default:
		return fmt.Errorf("unknown job kind %q (want learn, diff, check, or regress)", s.Kind)
	}
	if s.Witnesses < 0 {
		return fmt.Errorf("witnesses %d < 0", s.Witnesses)
	}
	if s.Depth < 0 {
		return fmt.Errorf("depth %d < 0", s.Depth)
	}
	return s.Config.Validate()
}

// Summary is the kind-specific result a finished job reports in its
// status (and journals, so a restarted daemon still serves it).
type Summary struct {
	// Learn / check / diff side A.
	States      int   `json:"states,omitempty"`
	Transitions int   `json:"transitions,omitempty"`
	Queries     int64 `json:"queries,omitempty"`
	Symbols     int64 `json:"symbols,omitempty"`
	Hits        int64 `json:"hits,omitempty"`
	// GuardEscalations counts the §5 adaptive guard's vote-budget raises
	// across the job's learns.
	GuardEscalations int64         `json:"guard_escalations,omitempty"`
	Duration         time.Duration `json:"duration,omitempty"`
	// Nondet marks a learn that halted on the §5 nondeterminism analysis
	// (a reported outcome, not a failure); NondetWord is its witness query.
	Nondet     bool     `json:"nondet,omitempty"`
	NondetWord []string `json:"nondet_word,omitempty"`
	// Diff.
	Equivalent *bool `json:"equivalent,omitempty"`
	Witnesses  int   `json:"witnesses,omitempty"`
	// Confirmed reports whether the replayed witness diverged on the wire.
	Confirmed *bool `json:"confirmed,omitempty"`
	// Check.
	Violations int `json:"violations,omitempty"`
	// Regress.
	RegressTargets int      `json:"regress_targets,omitempty"`
	Drifted        []string `json:"drifted,omitempty"`
}

// Job is one submitted job's full runtime record. Fields are guarded by
// the manager's lock; handlers read consistent snapshots via Status.
type Job struct {
	ID   string
	Spec Spec

	State    State
	Error    string
	Summary  *Summary
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Attempts counts how many times the job entered running — >1 means
	// the daemon was killed mid-job and the queue resumed it.
	Attempts int

	// Dir is the job's artifact directory (model.json, witness.txt, ...).
	Dir string

	cancel    func() // cancels the running job's context
	cancelled bool   // the user asked for cancellation
}

// Status is the JSON view of a job served by GET /v1/jobs/{id}.
type Status struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	State     State      `json:"state"`
	Spec      Spec       `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Summary   *Summary   `json:"summary,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Attempts  int        `json:"attempts,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
}
