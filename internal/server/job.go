// Package server implements prognosisd, the learning-as-a-service
// daemon: an HTTP/JSON API over an async job manager with a persistent
// FS-backed queue. Learn/diff/check/regress jobs are submitted as JSON
// bodies carrying the same learncfg.Config the CLI flags resolve
// through, run with bounded parallelism under per-job cancellable
// contexts, journal every lifecycle transition (so a killed daemon
// re-queues in-flight jobs on restart), stream the typed learning event
// stream over SSE through a fan-out hub with slow-subscriber drop
// accounting, and serve learned-model and witness artifacts from the
// job's artifact directory. The monitor subsystem (monitor.go)
// additionally warm-relearns every manifest cell on a schedule and
// raises drift alarms with live-confirmed witnesses. See
// docs/SERVICE.md and docs/MONITORING.md.
//
// The wire types — Spec, State, Status, Summary, Stats, and the SSE
// meta events — are defined once in pkg/client and aliased here, so the
// daemon and its typed Go client cannot drift.
package server

import (
	"time"

	"repro/internal/learncfg"
	"repro/pkg/client"
)

// Kind names a job's verb. Aliased from pkg/client.
const (
	KindLearn   = client.KindLearn
	KindDiff    = client.KindDiff
	KindCheck   = client.KindCheck
	KindRegress = client.KindRegress
	KindMonitor = client.KindMonitor
)

// State is one stop of the job lifecycle state machine; see
// client.State.
type State = client.State

const (
	StatePending   = client.StatePending
	StateRunning   = client.StateRunning
	StateDone      = client.StateDone
	StateFailed    = client.StateFailed
	StateCancelled = client.StateCancelled
)

// Spec is a job submission: the POST /v1/jobs body. See client.Spec.
type Spec = client.Spec

// Summary is the kind-specific result a finished job reports. See
// client.Summary.
type Summary = client.Summary

// Status is the JSON view of a job served by GET /v1/jobs/{id}. See
// client.Status.
type Status = client.Status

// JobStateChanged is the hub's job-lifecycle meta event. See
// client.JobStateChanged.
type JobStateChanged = client.JobStateChanged

// DriftAlarm is the monitor's live-confirmed drift event. See
// client.DriftAlarm.
type DriftAlarm = client.DriftAlarm

// defaultsFor returns the per-kind learncfg defaults, mirroring the CLI
// subcommands exactly.
func defaultsFor(kind string) learncfg.Defaults {
	switch kind {
	case KindDiff:
		return learncfg.Defaults{Conformance: 2, Loss: 0.02, Workers: 4}
	case KindCheck:
		return learncfg.Defaults{Conformance: 2}
	default:
		return learncfg.Defaults{}
	}
}

// Job is one submitted job's full runtime record. Fields are guarded by
// the manager's lock; handlers read consistent snapshots via Status.
type Job struct {
	ID   string
	Spec Spec

	State    State
	Error    string
	Summary  *Summary
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Attempts counts how many times the job entered running — >1 means
	// the daemon was killed mid-job and the queue resumed it.
	Attempts int

	// Dir is the job's artifact directory (model.json, witness.txt, ...).
	Dir string

	cancel    func() // cancels the running job's context
	cancelled bool   // the user asked for cancellation
}
