package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/learn"
	"repro/internal/testutil"
)

// instantRunner completes every job immediately with a canned summary.
func instantRunner(states int) Runner {
	return func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error) {
		obs.OnEvent(learn.HypothesisReady{Round: 1, States: states})
		return &Summary{States: states, Queries: 7}, nil
	}
}

// blockingRunner blocks until its context is cancelled, signalling
// started on entry.
func blockingRunner(started chan<- string) Runner {
	return func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error) {
		started <- job.ID
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

func newTestManager(t *testing.T, dir string, r Runner) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{Dir: dir, Runner: r, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

// TestManagerRunsJob: submit → done, with the summary journaled so a
// restarted manager still serves it.
func TestManagerRunsJob(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	m := newTestManager(t, dir, instantRunner(5))
	j, err := m.Submit(learnSpec("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, m, j.ID, StateDone)
	if st.Summary == nil || st.Summary.States != 5 {
		t.Fatalf("summary = %+v", st.Summary)
	}
	if st.Attempts != 1 {
		t.Fatalf("attempts = %d", st.Attempts)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)

	// The journal alone reconstructs the finished job.
	m2 := newTestManager(t, dir, instantRunner(5))
	st, err = m2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Summary == nil || st.Summary.States != 5 {
		t.Fatalf("restarted manager lost the job: %+v", st)
	}
	if err := m2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestManagerValidatesOnSubmit: a bad spec is refused before anything is
// journaled.
func TestManagerValidatesOnSubmit(t *testing.T) {
	m := newTestManager(t, t.TempDir(), instantRunner(1))
	defer m.Shutdown(context.Background())
	for _, spec := range []Spec{
		{},
		{Kind: "explode"},
		{Kind: KindLearn},
		{Kind: KindLearn, Target: "no-such-target"},
		{Kind: KindDiff, TargetA: "tcp"},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if n := len(m.List()); n != 0 {
		t.Fatalf("%d jobs created by invalid submissions", n)
	}
}

// TestManagerCancelPending: cancelling a queued job goes terminal
// without ever running.
func TestManagerCancelPending(t *testing.T) {
	base := runtime.NumGoroutine()
	started := make(chan string)
	m := newTestManager(t, t.TempDir(), blockingRunner(started))

	// The single worker is busy with j1; j2 stays pending.
	j1, err := m.Submit(learnSpec("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := m.Submit(learnSpec("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Get(j2.ID)
	if st.State != StateCancelled || st.Attempts != 0 {
		t.Fatalf("pending cancel: %+v", st)
	}
	if _, err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j1.ID, StateCancelled)
	if _, err := m.Cancel("j9999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestManagerCrashResume is the crash-recovery contract: a daemon killed
// mid-job leaves a journal whose last record for that job is "running";
// the next manager re-queues and completes it. The kill is simulated by
// writing the journal a crashed process would have left.
func TestManagerCrashResume(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	b, err := OpenFSBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := learnSpec("tcp")
	must := func(rec Record) {
		t.Helper()
		if err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{ID: "j0001", State: StatePending, Spec: &spec, At: time.Now()})
	must(Record{ID: "j0001", State: StateRunning, At: time.Now()})
	// A second job that never started.
	must(Record{ID: "j0002", State: StatePending, Spec: &spec, At: time.Now()})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, dir, instantRunner(3))
	st1 := waitState(t, m, "j0001", StateDone)
	st2 := waitState(t, m, "j0002", StateDone)
	// j0001 ran once before the crash and once after.
	if st1.Attempts != 2 {
		t.Fatalf("resumed job attempts = %d, want 2", st1.Attempts)
	}
	if st2.Attempts != 1 {
		t.Fatalf("fresh job attempts = %d, want 1", st2.Attempts)
	}
	// New submissions continue the ID sequence past the recovered jobs.
	j3, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "j0003" {
		t.Fatalf("post-resume ID = %s, want j0003", j3.ID)
	}
	waitState(t, m, j3.ID, StateDone)
	if got := m.Stats().Resumed; got != 1 {
		t.Fatalf("stats resumed = %d, want 1", got)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestManagerDrainRequeuesRunning: graceful shutdown gives running jobs
// the drain timeout, then cancels and journals them back to pending —
// the next manager picks them up.
func TestManagerDrainRequeuesRunning(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	started := make(chan string, 1)
	m, err := NewManager(ManagerConfig{Dir: dir, Runner: blockingRunner(started), DrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(learnSpec("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
	if _, err := m.Submit(learnSpec("tcp")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown: %v", err)
	}

	m2 := newTestManager(t, dir, instantRunner(4))
	st := waitState(t, m2, j.ID, StateDone)
	if st.Attempts != 2 {
		t.Fatalf("requeued job attempts = %d, want 2", st.Attempts)
	}
	if err := m2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestManagerParallelBound: at most Parallel jobs run concurrently.
func TestManagerParallelBound(t *testing.T) {
	base := runtime.NumGoroutine()
	var running, peak atomic.Int64
	runner := func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		running.Add(-1)
		return &Summary{}, nil
	}
	m, err := NewManager(ManagerConfig{Dir: t.TempDir(), Runner: runner, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 6)
	for i := range ids {
		j, err := m.Submit(learnSpec("tcp"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d, want <= 2", p)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestManagerFailedJob: a runner error marks the job failed and keeps
// the message.
func TestManagerFailedJob(t *testing.T) {
	base := runtime.NumGoroutine()
	runner := func(ctx context.Context, job *Job, obs learn.Observer) (*Summary, error) {
		return nil, fmt.Errorf("boom")
	}
	m, err := NewManager(ManagerConfig{Dir: t.TempDir(), Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(learnSpec("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := m.Get(j.ID)
		if st.State == StateFailed {
			if st.Error != "boom" {
				t.Fatalf("error = %q", st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}
