package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/lab"
	"repro/internal/learncfg"
	"repro/internal/testutil"
	"repro/pkg/client"
)

// The E2E tests drive the daemon exclusively through pkg/client — the
// same typed client prognosisctl and CI's daemon-smoke use — so the wire
// API is exercised through its one Go-side definition. Only the
// malformed-body cases below speak raw HTTP, because the typed client
// cannot produce bodies the parser must reject.

// waitClientState polls until the job reaches want, failing fast if it goes
// terminal elsewhere.
func waitClientState(t *testing.T, c *client.Client, id string, want State) client.Status {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return client.Status{}
}

// collectSSE follows the job's event stream until the terminal job_state
// event (or timeout), returning event-kind counts.
func collectSSE(t *testing.T, c *client.Client, id string) map[string]int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	es, err := c.Events(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	kinds := map[string]int{}
	for {
		ev, err := es.Next()
		if err == io.EOF {
			t.Fatalf("SSE stream ended without a terminal job_state (saw %v)", kinds)
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds[ev.Kind]++
		if js, ok := ev.JobState(); ok && js.State.Terminal() {
			return kinds
		}
	}
}

// TestServerEndToEnd is the acceptance path: submit a learn job through
// the typed client, follow its SSE stream to completion, verify the
// served model is byte-identical to what the same configuration learns
// through the lab API directly, cancel a second (RTT-slowed) job
// mid-run, and check stats/healthz/metrics along the way.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	ctx := context.Background()
	dir := t.TempDir()
	mgr, err := NewManager(ManagerConfig{Dir: dir, Parallel: 2, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	c := client.New(ts.URL)

	// Health before anything else.
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// A learn job and, in parallel, a deliberately slow victim for the
	// cancellation path (every query pays 10ms of emulated RTT).
	learnSpec := client.NewLearnSpec("google")
	learnSpec.Config.Conformance = 2
	learnJob, err := c.Submit(ctx, learnSpec)
	if err != nil {
		t.Fatal(err)
	}
	if learnJob.State != StatePending && learnJob.State != StateRunning {
		t.Fatalf("accepted job state = %s", learnJob.State)
	}
	slowSpec := client.NewLearnSpec("google")
	slowSpec.Config.RTT = learncfg.Duration(10 * time.Millisecond)
	slowJob, err := c.Submit(ctx, slowSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the slow job while it is demonstrably mid-run.
	waitClientState(t, c, slowJob.ID, StateRunning)
	if was, err := c.Cancel(ctx, slowJob.ID); err != nil {
		t.Fatal(err)
	} else if was != StateRunning {
		t.Fatalf("cancel hit state %s, want running", was)
	}

	// The learn job's event stream must replay the run (history + live)
	// and end with the terminal state; at least one hypothesis_ready is
	// the observability contract.
	kinds := collectSSE(t, c, learnJob.ID)
	if kinds["hypothesis_ready"] == 0 {
		t.Fatalf("no hypothesis_ready on the stream: %v", kinds)
	}
	if kinds["job_state"] == 0 {
		t.Fatalf("no job_state events: %v", kinds)
	}

	st, err := c.Wait(ctx, learnJob.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("learn job = %s (%s)", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.States == 0 || st.Summary.Queries == 0 {
		t.Fatalf("learn summary = %+v", st.Summary)
	}
	if st, err := c.Wait(ctx, slowJob.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	} else if st.State != StateCancelled {
		t.Fatalf("slow job reached %s, want cancelled", st.State)
	}

	// The served model must be byte-identical to a direct lab learn of
	// the same configuration — the daemon adds a transport, never a
	// different answer.
	served, err := c.Model(ctx, learnJob.ID, "", "")
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := os.ReadFile(filepath.Join(dir, "jobs", learnJob.ID, "model.json"))
	if !bytes.Equal(served, stored) {
		t.Fatal("served model differs from the stored artifact")
	}
	cfg := learncfg.Default(learncfg.Defaults{})
	cfg.Conformance = 2
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := lab.NewExperiment("google", opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Learn(ctx)
	if err != nil {
		t.Fatal(err)
	}
	exp.Close()
	direct := filepath.Join(t.TempDir(), "model.json")
	if err := res.Model().Save(direct); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("daemon model (%d bytes) != direct lab model (%d bytes)", len(served), len(want))
	}

	// DOT rendering of the same artifact.
	dot, err := c.Model(ctx, learnJob.ID, "", "dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") {
		t.Fatalf("dot artifact: %.80s", dot)
	}

	// Stats reflect the finished work, and the aggregate throughput rate
	// derives from the monotonic totals (busy seconds of finished jobs).
	stats, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs[StateDone] != 1 || stats.Jobs[StateCancelled] != 1 {
		t.Fatalf("stats jobs = %v", stats.Jobs)
	}
	if stats.Totals.Queries == 0 || stats.Totals.BusySeconds <= 0 {
		t.Fatalf("stats totals = %+v", stats.Totals)
	}
	if stats.Totals.QueriesPerSec <= 0 {
		t.Fatalf("queries_per_sec = %v, want > 0", stats.Totals.QueriesPerSec)
	}

	// The unified metrics plane: /metrics serves Prometheus text
	// exposition spanning the learner, guard, daemon, and SSE families.
	raw, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, family := range []string{
		"# TYPE prognosis_learn_queries_total counter",
		"# TYPE prognosis_guard_votes_total counter",
		"# TYPE prognosisd_jobs_submitted_total counter",
		"# TYPE prognosisd_jobs gauge",
		"# TYPE prognosisd_sse_events_published_total counter",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if !strings.Contains(text, `prognosisd_jobs_finished_total{state="done"}`) {
		t.Errorf("/metrics missing finished-by-state counter:\n%.400s", text)
	}

	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestServerResumeAcrossRestart: a daemon stopped mid-job re-queues it
// durably; the next daemon completes it warm from the shared query
// store — the service-level crash-resume contract (the manager-level
// twin simulates the journal a hard kill leaves).
func TestServerResumeAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	ctx := context.Background()
	dir := t.TempDir()
	mgr, err := NewManager(ManagerConfig{Dir: dir, DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	c := client.New(ts.URL)

	// Slow enough (1ms RTT per exchange ≈ seconds per learn) that the
	// drain timeout fires mid-learn and the job is re-queued rather than
	// finished, yet quick enough for the resumed attempt to complete.
	spec := client.NewLearnSpec("google")
	spec.Config.RTT = learncfg.Duration(time.Millisecond)
	job, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitClientState(t, c, job.ID, StateRunning)
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Draining daemons refuse new work: Healthz surfaces the 503.
	var apiErr *client.APIError
	if err := c.Healthz(ctx); !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %v, want 503", err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)

	// Restart over the same data dir: the job resumes — warm-started
	// from the store the first attempt populated, so no RTT penalty —
	// and completes.
	mgr2, err := NewManager(ManagerConfig{Dir: dir, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewServer(mgr2))
	c2 := client.New(ts2.URL)
	st, err := c2.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("resumed job = %s (%s)", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Fatalf("resumed job attempts = %d, want 2", st.Attempts)
	}
	if len(st.Artifacts) == 0 {
		t.Fatalf("resumed job has no artifacts: %+v", st)
	}
	ts2.Close()
	if err := mgr2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestServerRejectsBadSubmissions: malformed bodies, unknown fields, and
// invalid specs are 400s; unknown jobs are 404s — all surfaced as typed
// APIErrors through the client.
func TestServerRejectsBadSubmissions(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()
	mgr, err := NewManager(ManagerConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	c := client.New(ts.URL)

	// Bodies the typed client cannot construct — a truncated object and an
	// unknown field — must still be 400s: raw HTTP exercises the parser.
	for _, body := range []string{
		`{`,
		`{"kind": "learn", "target": "tcp", "tarlet": "oops"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: %d, want 400", body, resp.StatusCode)
		}
	}

	// Invalid specs through the client: every rejection is an APIError 400.
	badLearn := client.NewLearnSpec("")
	badTarget := client.NewLearnSpec("no-such-target")
	badWorkers := client.NewLearnSpec("tcp")
	badWorkers.Config.Workers = -1
	halfDiff := client.NewDiffSpec("tcp", "")
	monWithTarget := client.NewMonitorSpec("")
	monWithTarget.Target = "tcp"
	for _, spec := range []client.Spec{badLearn, badTarget, badWorkers, halfDiff, monWithTarget} {
		_, err := c.Submit(ctx, spec)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
			t.Errorf("submit %+v: %v, want APIError 400", spec, err)
		}
	}

	// Unknown jobs are 404s on every per-job surface.
	if _, err := c.Job(ctx, "j9999"); !is404(err) {
		t.Errorf("Job(j9999) = %v, want 404", err)
	}
	if _, err := c.Events(ctx, "j9999"); !is404(err) {
		t.Errorf("Events(j9999) = %v, want 404", err)
	}
	if _, err := c.Model(ctx, "j9999", "", ""); !is404(err) {
		t.Errorf("Model(j9999) = %v, want 404", err)
	}
	if _, err := c.Witness(ctx, "j9999"); !is404(err) {
		t.Errorf("Witness(j9999) = %v, want 404", err)
	}

	// A diff spec built by the constructor carries the diff CLI defaults,
	// and explicit zero overrides survive the round trip.
	spec := client.NewDiffSpec("google", "google-fixed")
	spec.Config.Loss = 0
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.Config.Workers != 4 || st.Spec.Config.Conformance != 2 {
		t.Fatalf("diff defaults not applied: %+v", st.Spec.Config)
	}
	if st.Spec.Config.Loss != 0 {
		t.Fatalf("explicit loss=0 overridden: %+v", st.Spec.Config)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}

func is404(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == http.StatusNotFound
}

// TestServerDiffJob drives a full diff through the service: google vs
// quiche on a clean link, witnesses confirmed by live replay, both
// models served.
func TestServerDiffJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	ctx := context.Background()
	mgr, err := NewManager(ManagerConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()
	c := client.New(ts.URL)

	spec := client.NewDiffSpec("google", "quiche")
	spec.Config.Loss = 0
	spec.Config.Workers = 1
	job, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("diff job = %s (%s)", st.State, st.Error)
	}
	if st.Summary == nil || st.Summary.Equivalent == nil {
		t.Fatalf("diff summary = %+v", st.Summary)
	}
	if *st.Summary.Equivalent {
		t.Fatal("google vs quiche reported equivalent")
	}
	if st.Summary.Confirmed == nil || !*st.Summary.Confirmed {
		t.Fatalf("witness not confirmed live: %+v", st.Summary)
	}
	for _, side := range []string{"a", "b"} {
		if _, err := c.Model(ctx, job.ID, side, ""); err != nil {
			t.Fatalf("model side %s: %v", side, err)
		}
	}
	report, err := c.Witness(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(report), "replayed live: diverged=true") {
		t.Fatalf("witness report missing live confirmation:\n%s", report)
	}

	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}
