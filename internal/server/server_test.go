package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/lab"
	"repro/internal/learncfg"
	"repro/internal/testutil"
)

// postJob submits a job body and decodes the accepted status.
func postJob(t *testing.T, ts *httptest.Server, body string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit %s: %d %s", body, resp.StatusCode, e["error"])
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitHTTP(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

// collectSSE reads the job's SSE stream until the terminal job_state
// event (or timeout), returning event-kind counts.
func collectSSE(t *testing.T, ts *httptest.Server, id string) map[string]int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	var last string
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			kinds[name]++
			last = name
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && last == "job_state" {
			var ev JobStateChanged
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("job_state payload %q: %v", data, err)
			}
			if ev.State.Terminal() {
				return kinds
			}
		}
	}
	t.Fatalf("SSE stream ended without a terminal job_state (saw %v)", kinds)
	return nil
}

// TestServerEndToEnd is the acceptance path: submit a learn job over
// HTTP, follow its SSE stream to completion, verify the served model is
// byte-identical to what the same configuration learns through the lab
// API directly, cancel a second (RTT-slowed) job mid-run, and check
// stats/healthz along the way.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	mgr, err := NewManager(ManagerConfig{Dir: dir, Parallel: 2, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	// Health before anything else.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// A learn job and, in parallel, a deliberately slow victim for the
	// cancellation path (every query pays 10ms of emulated RTT).
	learnJob := postJob(t, ts, `{"kind": "learn", "target": "google", "config": {"conformance": 2}}`)
	if learnJob.State != StatePending && learnJob.State != StateRunning {
		t.Fatalf("accepted job state = %s", learnJob.State)
	}
	slowJob := postJob(t, ts, `{"kind": "learn", "target": "google", "config": {"rtt": "10ms"}}`)

	// Cancel the slow job while it is demonstrably mid-run.
	waitHTTP(t, ts, slowJob.ID, StateRunning)
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+slowJob.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	// The learn job's event stream must replay the run (history + live)
	// and end with the terminal state; at least one hypothesis_ready is
	// the tentpole's observability contract.
	kinds := collectSSE(t, ts, learnJob.ID)
	if kinds["hypothesis_ready"] == 0 {
		t.Fatalf("no hypothesis_ready on the stream: %v", kinds)
	}
	if kinds["job_state"] == 0 {
		t.Fatalf("no job_state events: %v", kinds)
	}

	st := waitHTTP(t, ts, learnJob.ID, StateDone)
	if st.Summary == nil || st.Summary.States == 0 || st.Summary.Queries == 0 {
		t.Fatalf("learn summary = %+v", st.Summary)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := getStatus(t, ts, slowJob.ID); st.State == StateCancelled {
			break
		} else if st.State.Terminal() {
			t.Fatalf("slow job reached %s, want cancelled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never went terminal")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The served model must be byte-identical to a direct lab learn of
	// the same configuration — the daemon adds a transport, never a
	// different answer.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + learnJob.ID + "/model")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := os.ReadFile(filepath.Join(dir, "jobs", learnJob.ID, "model.json"))
	var viaHTTP bytes.Buffer
	if _, err := viaHTTP.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Equal(served, viaHTTP.Bytes()) {
		t.Fatal("served model differs from the stored artifact")
	}
	cfg := learncfg.Default(learncfg.Defaults{})
	cfg.Conformance = 2
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := lab.NewExperiment("google", opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Learn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	exp.Close()
	direct := filepath.Join(t.TempDir(), "model.json")
	if err := res.Model().Save(direct); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("daemon model (%d bytes) != direct lab model (%d bytes)", len(served), len(want))
	}

	// DOT rendering of the same artifact.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + learnJob.ID + "/model?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	var dot bytes.Buffer
	dot.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(dot.String(), "digraph") {
		t.Fatalf("dot artifact: %.80s", dot.String())
	}

	// Stats reflect the finished work.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Jobs[StateDone] != 1 || stats.Jobs[StateCancelled] != 1 {
		t.Fatalf("stats jobs = %v", stats.Jobs)
	}
	if stats.Totals.Queries == 0 {
		t.Fatalf("stats totals = %+v", stats.Totals)
	}

	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestServerResumeAcrossRestart: a daemon stopped mid-job re-queues it
// durably; the next daemon completes it warm from the shared query
// store — the service-level crash-resume contract (the manager-level
// twin simulates the journal a hard kill leaves).
func TestServerResumeAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	mgr, err := NewManager(ManagerConfig{Dir: dir, DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))

	// Slow enough (1ms RTT per exchange ≈ seconds per learn) that the
	// drain timeout fires mid-learn and the job is re-queued rather than
	// finished, yet quick enough for the resumed attempt to complete.
	job := postJob(t, ts, `{"kind": "learn", "target": "google", "config": {"rtt": "1ms"}}`)
	waitHTTP(t, ts, job.ID, StateRunning)
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Draining daemons refuse new work.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d", resp.StatusCode)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)

	// Restart over the same data dir: the job resumes — warm-started
	// from the store the first attempt populated, so no RTT penalty —
	// and completes.
	mgr2, err := NewManager(ManagerConfig{Dir: dir, DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewServer(mgr2))
	st := waitHTTP(t, ts2, job.ID, StateDone)
	if st.Attempts != 2 {
		t.Fatalf("resumed job attempts = %d, want 2", st.Attempts)
	}
	if len(st.Artifacts) == 0 {
		t.Fatalf("resumed job has no artifacts: %+v", st)
	}
	ts2.Close()
	if err := mgr2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	testutil.WaitForGoroutines(t, base)
}

// TestServerRejectsBadSubmissions: malformed bodies, unknown fields, and
// invalid specs are 400s; unknown jobs are 404s.
func TestServerRejectsBadSubmissions(t *testing.T) {
	base := runtime.NumGoroutine()
	mgr, err := NewManager(ManagerConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	for _, body := range []string{
		`{`,
		`{"kind": "learn"}`,
		`{"kind": "learn", "target": "no-such-target"}`,
		`{"kind": "learn", "target": "tcp", "tarlet": "oops"}`,
		`{"kind": "learn", "target": "tcp", "config": {"workers": 0}}`,
		`{"kind": "diff", "target": "tcp"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: %d, want 400", body, resp.StatusCode)
		}
	}
	for _, url := range []string{"/v1/jobs/j9999", "/v1/jobs/j9999/events", "/v1/jobs/j9999/model", "/v1/jobs/j9999/witness"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", url, resp.StatusCode)
		}
	}

	// A sparse diff body inherits the diff CLI defaults.
	var st Status
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind": "diff", "target_a": "google", "target_b": "google-fixed", "config": {"loss": 0}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Spec.Config.Workers != 4 || st.Spec.Config.Conformance != 2 {
		t.Fatalf("diff defaults not applied: %+v", st.Spec.Config)
	}
	if st.Spec.Config.Loss != 0 {
		t.Fatalf("explicit loss=0 overridden: %+v", st.Spec.Config)
	}
	if _, err := mgr.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestServerDiffJob drives a full diff through the service: google vs
// quiche on a clean link, witnesses confirmed by live replay, both
// models served.
func TestServerDiffJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full service round trip")
	}
	base := runtime.NumGoroutine()
	mgr, err := NewManager(ManagerConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(mgr))
	defer ts.Close()

	job := postJob(t, ts, `{"kind": "diff", "target_a": "google", "target_b": "quiche", "config": {"loss": 0, "workers": 1}}`)
	st := waitHTTP(t, ts, job.ID, StateDone)
	if st.Summary == nil || st.Summary.Equivalent == nil {
		t.Fatalf("diff summary = %+v", st.Summary)
	}
	if *st.Summary.Equivalent {
		t.Fatal("google vs quiche reported equivalent")
	}
	if st.Summary.Confirmed == nil || !*st.Summary.Confirmed {
		t.Fatalf("witness not confirmed live: %+v", st.Summary)
	}
	for _, side := range []string{"a", "b"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/model?side=%s", ts.URL, job.ID, side))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model side %s: %d", side, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/witness")
	if err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	report.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(report.String(), "replayed live: diverged=true") {
		t.Fatalf("witness report missing live confirmation:\n%s", report.String())
	}

	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	testutil.WaitForGoroutines(t, base)
}
