package server

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/learn"
)

// writeManifest writes a one-off regression manifest for the monitor to
// cycle over. The golden field is required by manifest validation but
// never read by the monitor (its baselines are its own lineage
// snapshots), so it may name a file that does not exist.
func writeManifest(t *testing.T, dir string, targets ...map[string]any) string {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"version": 1, "targets": targets})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMonitorUnchangedTargetZeroLiveQueries is one acceptance criterion:
// a monitor cycle over an unchanged target warm-relearns entirely from
// the shared query store and records a lineage entry with ZERO live
// queries — continuous monitoring of a stable target costs nothing on
// the wire.
func TestMonitorUnchangedTargetZeroLiveQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("two full learns")
	}
	ctx := context.Background()
	dataDir := t.TempDir()
	manifest := writeManifest(t, t.TempDir(),
		map[string]any{"name": "tcp", "golden": "unused.json", "seed": 13, "conformance": 2})
	opt := MonitorOptions{Manifest: manifest, DataDir: dataDir}

	sum, report, err := RunMonitorCycle(ctx, opt, nil)
	if err != nil {
		t.Fatalf("first cycle: %v\n%s", err, report)
	}
	if sum.Alarms != 0 || sum.RegressTargets != 1 {
		t.Fatalf("first cycle summary = %+v", sum)
	}
	if sum.Queries == 0 {
		t.Fatal("first (cold) cycle reported zero live queries")
	}

	sum, report, err = RunMonitorCycle(ctx, opt, nil)
	if err != nil {
		t.Fatalf("second cycle: %v\n%s", err, report)
	}
	if sum.Alarms != 0 {
		t.Fatalf("unchanged target raised an alarm:\n%s", report)
	}
	if sum.Queries != 0 {
		t.Fatalf("unchanged target cost %d live queries, want 0\n%s", sum.Queries, report)
	}

	lin, err := OpenLineage(filepath.Join(dataDir, "monitor", "lineage.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Close()
	recs := lin.Records()
	if len(recs) != 2 {
		t.Fatalf("lineage has %d records, want 2:\n%+v", len(recs), recs)
	}
	first, second := recs[0], recs[1]
	if first.ModelVersion != 1 || first.LiveQueries == 0 || first.Drift {
		t.Fatalf("baseline record = %+v", first)
	}
	if second.ModelVersion != 1 || second.Model != first.Model || second.LiveQueries != 0 || second.Drift {
		t.Fatalf("unchanged-cycle record = %+v (baseline %+v)", second, first)
	}
	if first.LogVersion == 0 || second.LogVersion != first.LogVersion {
		t.Fatalf("log versions %d → %d; an unchanged cycle must not grow the query log",
			first.LogVersion, second.LogVersion)
	}
	// The single snapshot both records reference exists.
	if _, err := os.Stat(filepath.Join(dataDir, "monitor", "snapshots", first.Model)); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorDriftAlarmOnMutatedTarget is the other acceptance
// criterion: when the monitored cell's behaviour changes (here, the
// lossy-retransmit target reconfigured from a clean link to the
// loss+warmup profile that flips it into degraded double-send mode), the
// cycle detects the divergence, replays the shortest witness against the
// live target, and raises a confirmed drift alarm carrying it.
func TestMonitorDriftAlarmOnMutatedTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("two full learns")
	}
	ctx := context.Background()
	dataDir := t.TempDir()
	clean := writeManifest(t, t.TempDir(),
		map[string]any{"name": "lossy-retransmit", "golden": "unused.json", "seed": 13, "conformance": 2})
	mutated := writeManifest(t, t.TempDir(),
		map[string]any{"name": "lossy-retransmit", "golden": "unused.json", "seed": 13, "conformance": 2,
			"loss": 0.02, "warmup": 100})

	sum, report, err := RunMonitorCycle(ctx, MonitorOptions{Manifest: clean, DataDir: dataDir}, nil)
	if err != nil {
		t.Fatalf("baseline cycle: %v\n%s", err, report)
	}
	if sum.Alarms != 0 {
		t.Fatalf("baseline cycle alarmed:\n%s", report)
	}

	// The mutated cycle must alarm, and the alarm must reach the observer
	// as a typed drift_alarm event (the daemon's SSE path).
	var alarms []DriftAlarm
	obs := learn.ObserverFunc(func(e learn.Event) {
		if a, ok := e.(DriftAlarm); ok {
			alarms = append(alarms, a)
		}
	})
	sum, report, err = RunMonitorCycle(ctx, MonitorOptions{Manifest: mutated, DataDir: dataDir}, obs)
	if err != nil {
		t.Fatalf("mutated cycle: %v\n%s", err, report)
	}
	if sum.Alarms != 1 || len(sum.Drifted) != 1 || sum.Drifted[0] != "lossy-retransmit" {
		t.Fatalf("mutated cycle summary = %+v\n%s", sum, report)
	}
	if len(alarms) != 1 {
		t.Fatalf("observer saw %d drift alarms, want 1", len(alarms))
	}
	a := alarms[0]
	if a.Cell != "lossy-retransmit" || !a.Confirmed {
		t.Fatalf("alarm = %+v", a)
	}
	if len(a.Witness) == 0 {
		t.Fatal("alarm carries no witness")
	}
	// The alarm fired only after the witness replayed live: Got is what
	// the live target answered, and it must diverge from the baseline's
	// prediction.
	if len(a.Got) != len(a.Witness) || len(a.Expected) != len(a.Witness) {
		t.Fatalf("witness outputs not aligned: %+v", a)
	}
	if sameOutputs(a.Got, a.Expected) {
		t.Fatalf("live outputs match the baseline — nothing drifted: %+v", a)
	}
	if a.ModelVersion != 2 {
		t.Fatalf("alarm model version = %d, want 2", a.ModelVersion)
	}
	if !strings.Contains(report, "DRIFT ALARM") {
		t.Fatalf("report missing the alarm:\n%s", report)
	}

	lin, err := OpenLineage(filepath.Join(dataDir, "monitor", "lineage.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Close()
	latest, ok := lin.Latest("lossy-retransmit")
	if !ok || !latest.Drift || !latest.Confirmed || latest.ModelVersion != 2 {
		t.Fatalf("lineage after drift = %+v, %v", latest, ok)
	}
	// Both model versions are snapshotted: the lineage can answer "what
	// did v1 look like" after the baseline advanced.
	for _, name := range []string{"lossy-retransmit.v1.json", "lossy-retransmit.v2.json"} {
		if _, err := os.Stat(filepath.Join(dataDir, "monitor", "snapshots", name)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMonitorNondetCell: a cell whose golden outcome is the §5
// nondeterminism halt records nondet lineage and does not alarm while it
// stays nondeterministic.
func TestMonitorNondetCell(t *testing.T) {
	if testing.Short() {
		t.Skip("two full learns")
	}
	ctx := context.Background()
	dataDir := t.TempDir()
	manifest := writeManifest(t, t.TempDir(),
		map[string]any{"name": "mvfst", "expect": "nondet", "seed": 13})
	opt := MonitorOptions{Manifest: manifest, DataDir: dataDir}

	for cycle := 1; cycle <= 2; cycle++ {
		sum, report, err := RunMonitorCycle(ctx, opt, nil)
		if err != nil {
			t.Fatalf("cycle %d: %v\n%s", cycle, err, report)
		}
		if sum.Alarms != 0 {
			t.Fatalf("cycle %d alarmed on a stably nondet cell:\n%s", cycle, report)
		}
	}
	lin, err := OpenLineage(filepath.Join(dataDir, "monitor", "lineage.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer lin.Close()
	recs := lin.Records()
	if len(recs) != 2 || !recs[0].Nondet || !recs[1].Nondet {
		t.Fatalf("lineage = %+v, want two nondet records", recs)
	}
	if recs[0].ModelVersion != 1 || recs[1].ModelVersion != 1 {
		t.Fatalf("nondet records advanced the model version: %+v", recs)
	}
}
