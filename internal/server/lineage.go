package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/jsonlog"
)

// lineageFormat and lineageVersion identify the monitor's lineage
// journal. Like the query store, a journal whose header names a foreign
// format or a newer version is reset rather than misread.
const (
	lineageFormat  = "prognosisd-lineage"
	lineageVersion = 1
)

// LineageRecord is one line of the monitor's lineage journal: which
// query-log version (the persistent store's entry count at snapshot
// time) produced which model version of which monitored cell, and what
// the cycle concluded about drift. The journal is append-only JSONL
// through internal/jsonlog, so a daemon killed mid-append costs at most
// the line in flight — the valid prefix survives.
type LineageRecord struct {
	// Cell names the monitored (target × config) cell — the manifest
	// entry's target name.
	Cell string `json:"cell"`
	// ModelVersion counts this cell's distinct model snapshots, 1-based.
	// An unchanged cycle re-references the current version.
	ModelVersion int `json:"model_version"`
	// LogVersion is the shared query store's entry count when the cycle's
	// relearn finished — the query-log version this model version was
	// produced from.
	LogVersion int64 `json:"log_version"`
	// Model is the snapshot filename (under the monitor's snapshots
	// directory) this record refers to; empty for nondet outcomes.
	Model string `json:"model,omitempty"`
	// Nondet marks a cycle whose relearn halted on the §5 analysis.
	Nondet bool `json:"nondet,omitempty"`
	// LiveQueries is what the relearn cost on the wire. An unchanged
	// target warm-relearned from the store costs zero.
	LiveQueries int64 `json:"live_queries"`
	// Drift marks a cycle whose outcome diverged from the cell's previous
	// snapshot; Confirmed marks that the witness reproduced the
	// divergence against the live target (only confirmed drift raises the
	// alarm and advances the baseline).
	Drift     bool      `json:"drift,omitempty"`
	Confirmed bool      `json:"confirmed,omitempty"`
	Witness   []string  `json:"witness,omitempty"`
	At        time.Time `json:"at"`
}

// Lineage is the open lineage journal. Safe for concurrent use.
type Lineage struct {
	mu   sync.Mutex
	f    *os.File
	recs []LineageRecord
}

// OpenLineage opens (creating if needed) the lineage journal at path,
// recovering the longest valid prefix: a corrupt or truncated tail —
// a daemon killed mid-append — is discarded, exactly like the query
// store's log. A foreign or future-version file is reset empty.
func OpenLineage(path string) (*Lineage, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: open lineage: %w", err)
	}
	l := &Lineage{f: f}
	ok, err := jsonlog.Recover(f, lineageFormat, lineageVersion, func(line []byte) bool {
		var rec LineageRecord
		if json.Unmarshal(line, &rec) != nil || rec.Cell == "" || rec.ModelVersion < 1 {
			return false
		}
		l.recs = append(l.recs, rec)
		return true
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: recover lineage: %w", err)
	}
	if !ok {
		l.recs = nil
		if err := jsonlog.Reset(f, lineageFormat, lineageVersion); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// Append journals one record (a single complete-line write).
func (l *Lineage) Append(rec LineageRecord) error {
	line, err := jsonlog.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("server: append lineage: %w", err)
	}
	l.recs = append(l.recs, rec)
	return nil
}

// Records returns a copy of every recovered and appended record, in
// journal order.
func (l *Lineage) Records() []LineageRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LineageRecord(nil), l.recs...)
}

// Latest returns the cell's most recent record, if any.
func (l *Lineage) Latest(cell string) (LineageRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.recs) - 1; i >= 0; i-- {
		if l.recs[i].Cell == cell {
			return l.recs[i], true
		}
	}
	return LineageRecord{}, false
}

// Close releases the journal file.
func (l *Lineage) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
