// Package props implements concrete-trace properties from the QUIC
// specification, the Φ input of the Prognosis architecture (Fig. 1). §6.2.2
// names two of them — "the sequence number on each newly-issued connection
// id must increase by 1" and "an endpoint must not send data on a stream at
// or beyond the final size" — and §5 uses "packet numbers are always
// increasing" as its running example. Properties run over the concrete
// packets recorded in the Oracle Table, complementing the abstract-model
// checks in internal/analysis.
package props

import (
	"fmt"

	"repro/internal/quicwire"
	"repro/internal/reference"
)

// Violation describes a failed property with the offending packet index.
type Violation struct {
	Property string
	Index    int // index into the checked packet sequence
	Detail   string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("props: %s violated at packet %d: %s", v.Property, v.Index, v.Detail)
}

// Property checks one requirement over a connection's packet sequence (one
// endpoint's sent packets, in order).
type Property interface {
	Name() string
	Check(packets []reference.ConcretePacket) *Violation
}

// All returns the built-in property set.
func All() []Property {
	return []Property{
		PacketNumbersIncreasing{},
		NewConnectionIDSeqIncrements{},
		NoDataBeyondFinalSize{},
		CloseIsTerminal{},
		BlockedLimitNonDecreasing{},
	}
}

// Check runs all given properties and returns every violation.
func Check(packets []reference.ConcretePacket, properties ...Property) []*Violation {
	if len(properties) == 0 {
		properties = All()
	}
	var out []*Violation
	for _, p := range properties {
		if v := p.Check(packets); v != nil {
			out = append(out, v)
		}
	}
	return out
}

// OutputPackets flattens the server-sent packets of recorded exchanges, in
// order — the view the properties below inspect.
func OutputPackets(exchanges []reference.Exchange) []reference.ConcretePacket {
	var out []reference.ConcretePacket
	for _, ex := range exchanges {
		out = append(out, ex.ConcreteOut...)
	}
	return out
}

// PacketNumbersIncreasing is §5's example property: within each packet
// number space, packet numbers must be strictly increasing.
type PacketNumbersIncreasing struct{}

// Name implements Property.
func (PacketNumbersIncreasing) Name() string { return "packet numbers always increasing" }

// Check implements Property.
func (p PacketNumbersIncreasing) Check(packets []reference.ConcretePacket) *Violation {
	last := map[string]uint64{}
	seen := map[string]bool{}
	for i, pkt := range packets {
		space := pkt.Type
		if space == "RETRY" || space == "RESET" || space == "VERSION_NEGOTIATION" {
			continue // unnumbered packet types
		}
		if seen[space] && pkt.PacketNumber <= last[space] {
			return &Violation{Property: p.Name(), Index: i,
				Detail: fmt.Sprintf("pn %d after %d in space %s", pkt.PacketNumber, last[space], space)}
		}
		seen[space] = true
		last[space] = pkt.PacketNumber
	}
	return nil
}

// NewConnectionIDSeqIncrements is the §6.2.2 property: sequence numbers of
// NEW_CONNECTION_ID frames must increase by exactly 1.
type NewConnectionIDSeqIncrements struct{}

// Name implements Property.
func (NewConnectionIDSeqIncrements) Name() string {
	return "NEW_CONNECTION_ID sequence numbers increase by 1"
}

// Check implements Property.
func (p NewConnectionIDSeqIncrements) Check(packets []reference.ConcretePacket) *Violation {
	var last uint64
	var seen bool
	for i, pkt := range packets {
		for _, f := range pkt.Frames {
			if f.Type != quicwire.FrameNewConnectionID {
				continue
			}
			if seen && f.SeqNumber != last+1 {
				return &Violation{Property: p.Name(), Index: i,
					Detail: fmt.Sprintf("sequence %d after %d", f.SeqNumber, last)}
			}
			seen = true
			last = f.SeqNumber
		}
	}
	return nil
}

// NoDataBeyondFinalSize is the §6.2.2 property: once a stream's final size
// is known (a FIN-bearing STREAM frame or RESET_STREAM), no data may be
// sent at or beyond it.
type NoDataBeyondFinalSize struct{}

// Name implements Property.
func (NoDataBeyondFinalSize) Name() string {
	return "no data on a stream at or beyond the final size"
}

// Check implements Property.
func (p NoDataBeyondFinalSize) Check(packets []reference.ConcretePacket) *Violation {
	finalSize := map[uint64]uint64{}
	known := map[uint64]bool{}
	for i, pkt := range packets {
		for _, f := range pkt.Frames {
			switch f.Type {
			case quicwire.FrameStream:
				end := f.Offset + uint64(len(f.Data))
				if known[f.StreamID] && end > finalSize[f.StreamID] {
					return &Violation{Property: p.Name(), Index: i,
						Detail: fmt.Sprintf("stream %d data to offset %d beyond final size %d",
							f.StreamID, end, finalSize[f.StreamID])}
				}
				if f.Fin {
					if known[f.StreamID] && finalSize[f.StreamID] != end {
						return &Violation{Property: p.Name(), Index: i,
							Detail: fmt.Sprintf("stream %d final size changed %d -> %d",
								f.StreamID, finalSize[f.StreamID], end)}
					}
					known[f.StreamID] = true
					finalSize[f.StreamID] = end
				}
			case quicwire.FrameResetStream:
				if known[f.StreamID] && finalSize[f.StreamID] != f.FinalSize {
					return &Violation{Property: p.Name(), Index: i,
						Detail: fmt.Sprintf("stream %d final size changed %d -> %d",
							f.StreamID, finalSize[f.StreamID], f.FinalSize)}
				}
				known[f.StreamID] = true
				finalSize[f.StreamID] = f.FinalSize
			}
		}
	}
	return nil
}

// CloseIsTerminal requires that after a CONNECTION_CLOSE frame the endpoint
// sends nothing but further CONNECTION_CLOSE retransmissions (RFC 9000
// §10.2: only packets containing CONNECTION_CLOSE may be sent in the
// closing state).
type CloseIsTerminal struct{}

// Name implements Property.
func (CloseIsTerminal) Name() string { return "only CONNECTION_CLOSE after closing" }

// Check implements Property.
func (p CloseIsTerminal) Check(packets []reference.ConcretePacket) *Violation {
	closed := false
	for i, pkt := range packets {
		hasClose := false
		for _, f := range pkt.Frames {
			if f.Type == quicwire.FrameConnectionClose {
				hasClose = true
			}
		}
		if closed && !hasClose && pkt.Type != "RESET" {
			return &Violation{Property: p.Name(), Index: i,
				Detail: fmt.Sprintf("%s packet without CONNECTION_CLOSE after closing", pkt.Type)}
		}
		if hasClose {
			closed = true
		}
	}
	return nil
}

// BlockedLimitNonDecreasing requires STREAM_DATA_BLOCKED's Maximum Stream
// Data field to be non-decreasing and, once data has flowed, non-zero — a
// targeted check that flags the Issue 4 placeholder directly from traces.
type BlockedLimitNonDecreasing struct{}

// Name implements Property.
func (BlockedLimitNonDecreasing) Name() string {
	return "STREAM_DATA_BLOCKED carries the real blocked offset"
}

// Check implements Property.
func (p BlockedLimitNonDecreasing) Check(packets []reference.ConcretePacket) *Violation {
	sent := map[uint64]uint64{} // stream -> bytes sent so far
	for i, pkt := range packets {
		for _, f := range pkt.Frames {
			switch f.Type {
			case quicwire.FrameStream:
				if end := f.Offset + uint64(len(f.Data)); end > sent[f.StreamID] {
					sent[f.StreamID] = end
				}
			case quicwire.FrameStreamDataBlocked:
				if sent[f.StreamID] > 0 && f.Limit == 0 {
					return &Violation{Property: p.Name(), Index: i,
						Detail: fmt.Sprintf("stream %d blocked at offset %d but frame says 0 (placeholder never updated?)",
							f.StreamID, sent[f.StreamID])}
				}
			}
		}
	}
	return nil
}
