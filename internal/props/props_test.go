package props

import (
	"strings"
	"testing"

	"repro/internal/lab"
	"repro/internal/quicsim"
	"repro/internal/quicwire"
	"repro/internal/reference"
)

func pkt(t string, pn uint64, frames ...quicwire.Frame) reference.ConcretePacket {
	return reference.ConcretePacket{Type: t, PacketNumber: pn, Frames: frames}
}

func TestPacketNumbersIncreasing(t *testing.T) {
	good := []reference.ConcretePacket{
		pkt("INITIAL", 0), pkt("HANDSHAKE", 0), pkt("INITIAL", 1), pkt("SHORT", 0), pkt("SHORT", 1),
	}
	if v := (PacketNumbersIncreasing{}).Check(good); v != nil {
		t.Fatalf("false positive: %v", v)
	}
	bad := []reference.ConcretePacket{pkt("SHORT", 3), pkt("SHORT", 3)}
	v := (PacketNumbersIncreasing{}).Check(bad)
	if v == nil || v.Index != 1 {
		t.Fatalf("missed repeated pn: %v", v)
	}
	// Unnumbered packet types are exempt.
	exempt := []reference.ConcretePacket{pkt("SHORT", 5), pkt("RETRY", 0), pkt("RESET", 0), pkt("SHORT", 6)}
	if v := (PacketNumbersIncreasing{}).Check(exempt); v != nil {
		t.Fatalf("exempt types flagged: %v", v)
	}
}

func TestNewConnectionIDSeqIncrements(t *testing.T) {
	ncid := func(seq uint64) quicwire.Frame {
		return quicwire.Frame{Type: quicwire.FrameNewConnectionID, SeqNumber: seq, ConnectionID: []byte{1}}
	}
	good := []reference.ConcretePacket{pkt("SHORT", 0, ncid(1)), pkt("SHORT", 1, ncid(2)), pkt("SHORT", 2, ncid(3))}
	if v := (NewConnectionIDSeqIncrements{}).Check(good); v != nil {
		t.Fatalf("false positive: %v", v)
	}
	bad := []reference.ConcretePacket{pkt("SHORT", 0, ncid(1)), pkt("SHORT", 1, ncid(3))}
	v := (NewConnectionIDSeqIncrements{}).Check(bad)
	if v == nil || !strings.Contains(v.Detail, "sequence 3 after 1") {
		t.Fatalf("missed seq jump: %v", v)
	}
}

func TestNoDataBeyondFinalSize(t *testing.T) {
	stream := func(id, off uint64, data string, fin bool) quicwire.Frame {
		return quicwire.Frame{Type: quicwire.FrameStream, StreamID: id, Offset: off, Data: []byte(data), Fin: fin}
	}
	good := []reference.ConcretePacket{
		pkt("SHORT", 0, stream(0, 0, "hello", false)),
		pkt("SHORT", 1, stream(0, 5, "world", true)),
		pkt("SHORT", 2, stream(0, 5, "world", true)), // exact retransmission is fine
	}
	if v := (NoDataBeyondFinalSize{}).Check(good); v != nil {
		t.Fatalf("false positive: %v", v)
	}
	bad := []reference.ConcretePacket{
		pkt("SHORT", 0, stream(0, 0, "hello", true)),
		pkt("SHORT", 1, stream(0, 5, "x", false)), // beyond final size 5
	}
	if v := (NoDataBeyondFinalSize{}).Check(bad); v == nil {
		t.Fatal("missed data beyond final size")
	}
	moved := []reference.ConcretePacket{
		pkt("SHORT", 0, stream(0, 0, "hello", true)),
		pkt("SHORT", 1, quicwire.Frame{Type: quicwire.FrameResetStream, StreamID: 0, FinalSize: 9}),
	}
	if v := (NoDataBeyondFinalSize{}).Check(moved); v == nil {
		t.Fatal("missed final-size change via RESET_STREAM")
	}
}

func TestCloseIsTerminal(t *testing.T) {
	cc := quicwire.Frame{Type: quicwire.FrameConnectionClose}
	good := []reference.ConcretePacket{
		pkt("SHORT", 0, quicwire.Frame{Type: quicwire.FrameAck}),
		pkt("SHORT", 1, cc),
		pkt("SHORT", 2, cc), // retransmission allowed
	}
	if v := (CloseIsTerminal{}).Check(good); v != nil {
		t.Fatalf("false positive: %v", v)
	}
	bad := []reference.ConcretePacket{
		pkt("SHORT", 0, cc),
		pkt("SHORT", 1, quicwire.Frame{Type: quicwire.FrameStream, StreamID: 0, Data: []byte("x")}),
	}
	if v := (CloseIsTerminal{}).Check(bad); v == nil {
		t.Fatal("missed post-close data")
	}
}

// TestBlockedLimitFlagsIssue4Live runs the property against live traces of
// the buggy and fixed Google profiles — the trace-level complement of the
// synthesis experiment.
func TestBlockedLimitFlagsIssue4Live(t *testing.T) {
	word := []string{
		quicsim.SymInitialCrypto, quicsim.SymHandshakeC,
		quicsim.SymShortStream, quicsim.SymShortStream,
	}
	collect := func(profile quicsim.Profile) []reference.ConcretePacket {
		setup := lab.NewQUIC(profile, lab.QUICOptions{Seed: 3})
		if err := setup.Reset(); err != nil {
			t.Fatal(err)
		}
		setup.Client.ClearTrace()
		for _, sym := range word {
			if _, err := setup.Client.Step(sym); err != nil {
				t.Fatal(err)
			}
		}
		return OutputPackets(setup.Client.Trace())
	}
	if v := (BlockedLimitNonDecreasing{}).Check(collect(quicsim.ProfileGoogle)); v == nil {
		t.Fatal("Issue 4 not flagged on the buggy profile")
	} else if !strings.Contains(v.Detail, "placeholder") {
		t.Fatalf("unexpected detail: %v", v)
	}
	if v := (BlockedLimitNonDecreasing{}).Check(collect(quicsim.ProfileGoogleFixed)); v != nil {
		t.Fatalf("false positive on the fixed profile: %v", v)
	}
}

// TestLiveServerSatisfiesCoreProperties checks that a full happy-path
// session against the Quiche profile satisfies every built-in property.
func TestLiveServerSatisfiesCoreProperties(t *testing.T) {
	setup := lab.NewQUIC(quicsim.ProfileQuiche, lab.QUICOptions{Seed: 3})
	if err := setup.Reset(); err != nil {
		t.Fatal(err)
	}
	setup.Client.ClearTrace()
	for _, sym := range []string{
		quicsim.SymInitialCrypto, quicsim.SymHandshakeC,
		quicsim.SymShortFC, quicsim.SymShortStream, quicsim.SymShortStream,
	} {
		if _, err := setup.Client.Step(sym); err != nil {
			t.Fatal(err)
		}
	}
	packets := OutputPackets(setup.Client.Trace())
	if len(packets) == 0 {
		t.Fatal("no packets recorded")
	}
	if vs := Check(packets); len(vs) != 0 {
		t.Fatalf("violations on a compliant session: %v", vs)
	}
}

func TestCheckRunsAllByDefault(t *testing.T) {
	bad := []reference.ConcretePacket{pkt("SHORT", 3), pkt("SHORT", 3)}
	vs := Check(bad)
	if len(vs) != 1 || vs[0].Property != (PacketNumbersIncreasing{}).Name() {
		t.Fatalf("vs = %v", vs)
	}
	if !strings.Contains(vs[0].Error(), "packet 1") {
		t.Fatalf("error rendering: %v", vs[0])
	}
}
