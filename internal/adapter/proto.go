// Package adapter is the external-target boundary: it runs any program
// speaking a line-oriented symbol-over-stdio protocol as a learnable
// SUL, so closed-box implementations become registry targets without
// touching the engine (ROADMAP item 4). The protocol is deliberately
// small — three commands, four replies, one escaping rule — because the
// whole point is that wrapping a real implementation (quic-go, quiche,
// a kernel stack behind a harness) should take an afternoon, not a
// port of the engine. docs/ADAPTER.md is the normative spec with a wire
// example; this file is the codec both sides share.
//
// Wire format, version 1. Every message is one LF-terminated line of
// space-separated tokens. Symbols are percent-escaped (space, '%',
// control bytes, and non-ASCII bytes become %XX; a bare "%" token is
// the empty string), so any abstract symbol survives the line
// discipline. Engine to adapter:
//
//	HELLO 1            open the session, announce protocol version
//	RESET              reset the implementation to its initial state
//	QUERY <sym>        run one input symbol
//
// Adapter to engine:
//
//	HELLO 1 <sym>...   version + the input alphabet (>= 1 symbol)
//	OK                 RESET succeeded
//	OUT <sym>...       the QUERY's abstract output (>= 1 symbol)
//	ERR <msg>          the command failed; msg is one escaped token
//
// Parsing is strict: unknown verbs, wrong arities, bad escapes, and
// overlong lines are typed *ProtoError values, never best-effort
// guesses — a desynced symbol stream silently corrupts a learned model,
// so the codec refuses rather than resynchronises.
package adapter

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Version is the protocol version this engine speaks. HELLO carries it
// in both directions; a mismatch is a handshake failure, not a
// negotiation.
const Version = 1

// MaxLine bounds one protocol line (verb, tokens, and escapes
// included). Longer lines are a protocol error on both sides: the
// engine's reader refuses to buffer them, and Serve rejects them before
// touching the wrapped implementation.
const MaxLine = 1 << 16

// ProtoError is a violation of the wire protocol: a malformed line,
// a bad escape, a wrong arity, an unknown verb. It is the typed error
// every parse path returns, so callers can distinguish "the adapter is
// speaking garbage" from "the adapter's process died".
type ProtoError struct {
	// Reason says what was wrong.
	Reason string
	// Line is the offending line (truncated for display).
	Line string
}

// Error implements error.
func (e *ProtoError) Error() string {
	line := e.Line
	if len(line) > 120 {
		line = line[:120] + "..."
	}
	if line == "" {
		return "adapter protocol: " + e.Reason
	}
	return fmt.Sprintf("adapter protocol: %s in %q", e.Reason, line)
}

// Command verbs (engine to adapter).
const (
	CmdHello = "HELLO"
	CmdReset = "RESET"
	CmdQuery = "QUERY"
)

// Reply verbs (adapter to engine).
const (
	RepHello = "HELLO"
	RepOK    = "OK"
	RepOut   = "OUT"
	RepErr   = "ERR"
)

// Command is one engine-to-adapter message.
type Command struct {
	Kind string
	// Version is the protocol version (HELLO only).
	Version int
	// Input is the symbol to run (QUERY only).
	Input string
}

// Reply is one adapter-to-engine message.
type Reply struct {
	Kind string
	// Version is the protocol version (HELLO only).
	Version int
	// Alphabet is the advertised input alphabet (HELLO only, >= 1).
	Alphabet []string
	// Outputs is the abstract output of one QUERY (OUT only, >= 1).
	Outputs []string
	// Msg is the failure description (ERR only; may be empty).
	Msg string
}

// EncodeCommand renders a command as one protocol line (no trailing
// newline). Invalid commands are a ProtoError.
func EncodeCommand(c Command) (string, error) {
	switch c.Kind {
	case CmdHello:
		if c.Version < 1 {
			return "", &ProtoError{Reason: fmt.Sprintf("HELLO version %d < 1", c.Version)}
		}
		return fmt.Sprintf("HELLO %d", c.Version), nil
	case CmdReset:
		return "RESET", nil
	case CmdQuery:
		return "QUERY " + escapeToken(c.Input), nil
	}
	return "", &ProtoError{Reason: fmt.Sprintf("unknown command kind %q", c.Kind)}
}

// ParseCommand parses one engine-to-adapter line. Every failure is a
// *ProtoError.
func ParseCommand(line string) (Command, error) {
	fields, err := splitLine(line)
	if err != nil {
		return Command{}, err
	}
	switch fields[0] {
	case CmdHello:
		if len(fields) != 2 {
			return Command{}, &ProtoError{Reason: "HELLO wants exactly one version token", Line: line}
		}
		v, err := parseVersion(fields[1], line)
		if err != nil {
			return Command{}, err
		}
		return Command{Kind: CmdHello, Version: v}, nil
	case CmdReset:
		if len(fields) != 1 {
			return Command{}, &ProtoError{Reason: "RESET takes no arguments", Line: line}
		}
		return Command{Kind: CmdReset}, nil
	case CmdQuery:
		if len(fields) != 2 {
			return Command{}, &ProtoError{Reason: "QUERY wants exactly one symbol", Line: line}
		}
		sym, err := unescapeToken(fields[1], line)
		if err != nil {
			return Command{}, err
		}
		return Command{Kind: CmdQuery, Input: sym}, nil
	}
	return Command{}, &ProtoError{Reason: fmt.Sprintf("unknown command %q", fields[0]), Line: line}
}

// EncodeReply renders a reply as one protocol line (no trailing
// newline). Invalid replies are a ProtoError.
func EncodeReply(r Reply) (string, error) {
	switch r.Kind {
	case RepHello:
		if r.Version < 1 {
			return "", &ProtoError{Reason: fmt.Sprintf("HELLO version %d < 1", r.Version)}
		}
		if len(r.Alphabet) == 0 {
			return "", &ProtoError{Reason: "HELLO reply needs a non-empty alphabet"}
		}
		return fmt.Sprintf("HELLO %d %s", r.Version, escapeTokens(r.Alphabet)), nil
	case RepOK:
		return "OK", nil
	case RepOut:
		if len(r.Outputs) == 0 {
			return "", &ProtoError{Reason: "OUT reply needs at least one symbol"}
		}
		return "OUT " + escapeTokens(r.Outputs), nil
	case RepErr:
		return "ERR " + escapeToken(r.Msg), nil
	}
	return "", &ProtoError{Reason: fmt.Sprintf("unknown reply kind %q", r.Kind)}
}

// ParseReply parses one adapter-to-engine line. Every failure is a
// *ProtoError.
func ParseReply(line string) (Reply, error) {
	fields, err := splitLine(line)
	if err != nil {
		return Reply{}, err
	}
	switch fields[0] {
	case RepHello:
		if len(fields) < 3 {
			return Reply{}, &ProtoError{Reason: "HELLO reply wants a version and a non-empty alphabet", Line: line}
		}
		v, err := parseVersion(fields[1], line)
		if err != nil {
			return Reply{}, err
		}
		alphabet, err := unescapeTokens(fields[2:], line)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: RepHello, Version: v, Alphabet: alphabet}, nil
	case RepOK:
		if len(fields) != 1 {
			return Reply{}, &ProtoError{Reason: "OK takes no arguments", Line: line}
		}
		return Reply{Kind: RepOK}, nil
	case RepOut:
		if len(fields) < 2 {
			return Reply{}, &ProtoError{Reason: "OUT wants at least one symbol", Line: line}
		}
		outs, err := unescapeTokens(fields[1:], line)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: RepOut, Outputs: outs}, nil
	case RepErr:
		if len(fields) != 2 {
			return Reply{}, &ProtoError{Reason: "ERR wants exactly one message token", Line: line}
		}
		msg, err := unescapeToken(fields[1], line)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: RepErr, Msg: msg}, nil
	}
	return Reply{}, &ProtoError{Reason: fmt.Sprintf("unknown reply %q", fields[0]), Line: line}
}

// splitLine tokenises one line: single-space separated, no empty
// tokens, no leading/trailing space, no control bytes, bounded length.
func splitLine(line string) ([]string, error) {
	if len(line) > MaxLine {
		return nil, &ProtoError{Reason: fmt.Sprintf("line of %d bytes exceeds the %d-byte limit", len(line), MaxLine)}
	}
	if line == "" {
		return nil, &ProtoError{Reason: "empty line"}
	}
	if strings.ContainsAny(line, "\r\n") {
		return nil, &ProtoError{Reason: "line contains a raw newline", Line: line}
	}
	fields := strings.Split(line, " ")
	for _, f := range fields {
		if f == "" {
			return nil, &ProtoError{Reason: "empty token (doubled, leading, or trailing space)", Line: line}
		}
	}
	return fields, nil
}

func parseVersion(tok, line string) (int, error) {
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, &ProtoError{Reason: fmt.Sprintf("bad version token %q", tok), Line: line}
	}
	if v < 1 {
		return 0, &ProtoError{Reason: fmt.Sprintf("version %d < 1", v), Line: line}
	}
	return v, nil
}

const hexDigits = "0123456789ABCDEF"

// escapeToken renders one symbol as a wire token: printable ASCII
// passes through, everything else (space, '%', control, non-ASCII)
// becomes %XX, and the empty string becomes a bare "%".
func escapeToken(s string) string {
	if s == "" {
		return "%"
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c > 0x20 && c < 0x7F && c != '%' {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexDigits[c>>4])
		b.WriteByte(hexDigits[c&0xF])
	}
	return b.String()
}

func escapeTokens(syms []string) string {
	esc := make([]string, len(syms))
	for i, s := range syms {
		esc[i] = escapeToken(s)
	}
	return strings.Join(esc, " ")
}

// unescapeToken decodes one wire token back to a symbol, strictly:
// '%' must introduce exactly two hex digits (either case), and raw
// bytes outside printable ASCII are refused.
func unescapeToken(tok, line string) (string, error) {
	if tok == "" {
		return "", &ProtoError{Reason: "empty token", Line: line}
	}
	if tok == "%" {
		return "", nil
	}
	var b strings.Builder
	b.Grow(len(tok))
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch {
		case c == '%':
			if i+2 > len(tok)-1 {
				return "", &ProtoError{Reason: "truncated %XX escape", Line: line}
			}
			hi, lo := fromHex(tok[i+1]), fromHex(tok[i+2])
			if hi < 0 || lo < 0 {
				return "", &ProtoError{Reason: fmt.Sprintf("bad escape %%%c%c", tok[i+1], tok[i+2]), Line: line}
			}
			b.WriteByte(byte(hi<<4 | lo))
			i += 2
		case c > 0x20 && c < 0x7F:
			b.WriteByte(c)
		default:
			return "", &ProtoError{Reason: fmt.Sprintf("raw byte 0x%02X must be %%XX-escaped", c), Line: line}
		}
	}
	return b.String(), nil
}

func unescapeTokens(toks []string, line string) ([]string, error) {
	out := make([]string, len(toks))
	for i, t := range toks {
		s, err := unescapeToken(t, line)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func fromHex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// readLine reads one LF-terminated line (without the newline),
// enforcing MaxLine. A clean EOF before any byte is io.EOF; EOF inside
// a line is also io.EOF (the peer died mid-message — the caller's
// crash handling owns the diagnosis). Overlong lines are a
// *ProtoError.
func readLine(br *bufio.Reader) (string, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		switch err {
		case nil:
			line := buf[:len(buf)-1]
			if len(line) > MaxLine {
				return "", &ProtoError{Reason: fmt.Sprintf("line of %d bytes exceeds the %d-byte limit", len(line), MaxLine)}
			}
			return string(line), nil
		case bufio.ErrBufferFull:
			if len(buf) > MaxLine {
				return "", &ProtoError{Reason: fmt.Sprintf("line exceeds the %d-byte limit", MaxLine)}
			}
		case io.EOF:
			return "", io.EOF
		default:
			return "", err
		}
	}
}
