package adapter

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/testutil"
)

// adapterScript writes a /bin/sh adapter into a temp dir and returns
// the Config.Command that runs it. The script sees its own directory in
// $dir (for marker/boot files) via a cd preamble.
func adapterScript(t *testing.T, body string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "adapter.sh")
	script := "#!/bin/sh\ncd \"$(dirname \"$0\")\" || exit 1\n" + body
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return "/bin/sh " + path
}

// echoAdapter is the well-behaved reference script: alphabet {a, b},
// every query answered "got-<sym>".
const echoAdapter = `
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a b" ;;
    RESET) echo "OK" ;;
    QUERY) echo "OUT got-$2" ;;
    *) echo "ERR unknown" ;;
  esac
done
`

func TestSULHappyPath(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Config{Command: adapterScript(t, echoAdapter)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Alphabet(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("alphabet = %v, want [a b]", got)
	}
	for _, in := range []string{"a", "b", "a"} {
		out, err := s.Step(in)
		if err != nil {
			t.Fatalf("Step(%s): %v", in, err)
		}
		if want := "got-" + in; out != want {
			t.Fatalf("Step(%s) = %q, want %q", in, out, want)
		}
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if out, err := s.Step("b"); err != nil || out != "got-b" {
		t.Fatalf("Step after Reset = %q, %v", out, err)
	}
	if n := s.Restarts(); n != 0 {
		t.Fatalf("healthy run recorded %d restarts", n)
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestSULQueryDeadline drives an adapter that never answers QUERY: every
// attempt must hit the per-query deadline, burn one restart, and the
// final error must carry both ErrRestartsExhausted and ErrDeadline. The
// SUL must then be revivable by Reset.
func TestSULQueryDeadline(t *testing.T) {
	base := runtime.NumGoroutine()
	cmd := adapterScript(t, `
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a" ;;
    RESET) echo "OK" ;;
    QUERY) : ;;
  esac
done
`)
	s, err := New(Config{Command: cmd, QueryTimeout: 100 * time.Millisecond, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out, err := s.Step("a")
	if err == nil {
		t.Fatalf("Step on a silent adapter answered %q", out)
	}
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Errorf("error %v does not wrap ErrRestartsExhausted", err)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("error %v does not wrap ErrDeadline", err)
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not an *Error", err)
	}
	if s.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1", s.Restarts())
	}
	// The subprocess answers RESET promptly, so reviving must succeed.
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset after deadline failure: %v", err)
	}
	if s.Restarts() != 2 {
		t.Errorf("Restarts() after revive = %d, want 2", s.Restarts())
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestSULGarbageOutput drives an adapter that answers QUERY with a line
// that is not protocol: the result must be a typed error carrying the
// *ProtoError cause — never a made-up answer.
func TestSULGarbageOutput(t *testing.T) {
	base := runtime.NumGoroutine()
	cmd := adapterScript(t, `
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a" ;;
    RESET) echo "OK" ;;
    QUERY) echo "BANANAS ???" ;;
  esac
done
`)
	s, err := New(Config{Command: cmd, QueryTimeout: time.Second, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Step("a")
	if err == nil {
		t.Fatalf("Step on a garbage adapter answered %q", out)
	}
	var pe *ProtoError
	if !errors.As(err, &pe) {
		t.Errorf("error %v does not carry a *ProtoError cause", err)
	}
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Errorf("error %v does not wrap ErrRestartsExhausted", err)
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestSULErrAnswerIsNotARestart: an ERR reply is the adapter answering,
// not dying — it must surface as Op == OpAnswer with zero restarts, and
// the session must keep working afterwards.
func TestSULErrAnswerIsNotARestart(t *testing.T) {
	base := runtime.NumGoroutine()
	cmd := adapterScript(t, `
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a bad" ;;
    RESET) echo "OK" ;;
    QUERY)
      if [ "$2" = "bad" ]; then echo "ERR boom"; else echo "OUT got-$2"; fi ;;
  esac
done
`)
	s, err := New(Config{Command: cmd})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step("bad"); err == nil {
		t.Fatal("ERR reply did not surface as an error")
	} else {
		var ae *Error
		if !errors.As(err, &ae) || ae.Op != OpAnswer {
			t.Errorf("ERR reply surfaced as %v, want Op %q", err, OpAnswer)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Errorf("ERR message lost: %v", err)
		}
	}
	if s.Restarts() != 0 {
		t.Errorf("ERR reply cost %d restarts, want 0", s.Restarts())
	}
	if out, err := s.Step("a"); err != nil || out != "got-a" {
		t.Fatalf("session dead after an ERR answer: %q, %v", out, err)
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

// crashingAdapter exits mid-word on its first boot's third query and
// marks every answer with its boot number, so a restart-and-replay is
// visible as divergence: the replayed prefix re-answers under boot 2.
const crashingAdapter = `
boot=$(cat boot 2>/dev/null || echo 0)
boot=$((boot+1))
echo "$boot" > boot
n=0
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a b" ;;
    RESET) echo "OK" ;;
    QUERY)
      n=$((n+1))
      if [ "$boot" = "1" ] && [ "$n" = "3" ]; then exit 3; fi
      echo "OUT b$boot-n$n" ;;
  esac
done
`

func TestSULCrashRestartAndReplay(t *testing.T) {
	base := runtime.NumGoroutine()
	divBefore := divergenceTotal.Value()
	var gotRestarts int
	var gotReason string
	s, err := New(Config{
		Command: adapterScript(t, crashingAdapter),
		OnRestart: func(restarts int, reason string) {
			gotRestarts, gotReason = restarts, reason
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"b1-n1", "b1-n2"} {
		out, err := s.Step("a")
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		if out != want {
			t.Fatalf("Step %d = %q, want %q", i, out, want)
		}
	}
	// The third query kills boot 1 mid-word. The SUL must respawn,
	// replay the two recorded steps (which now answer under boot 2 —
	// two divergences, fresh answers win), and answer the interrupted
	// query fresh.
	out, err := s.Step("a")
	if err != nil {
		t.Fatalf("Step across the crash: %v", err)
	}
	if want := "b2-n3"; out != want {
		t.Fatalf("post-crash answer = %q, want %q (replayed prefix plus fresh query)", out, want)
	}
	if s.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1", s.Restarts())
	}
	if gotRestarts != 1 || gotReason == "" {
		t.Errorf("OnRestart saw (%d, %q), want (1, non-empty reason)", gotRestarts, gotReason)
	}
	if d := divergenceTotal.Value() - divBefore; d != 2 {
		t.Errorf("replay divergence counter moved by %d, want 2", d)
	}
	// The replayed word must have been updated in place: a fourth query
	// continues the boot-2 numbering.
	if out, err := s.Step("b"); err != nil || out != "b2-n4" {
		t.Fatalf("Step after replay = %q, %v; want b2-n4", out, err)
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

// TestSULCrashOnResetRevives: a subprocess that died between words must
// be revived transparently by the next Reset, with an empty replay.
func TestSULCrashOnResetRevives(t *testing.T) {
	base := runtime.NumGoroutine()
	cmd := adapterScript(t, `
boot=$(cat boot 2>/dev/null || echo 0)
boot=$((boot+1))
echo "$boot" > boot
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 1 a" ;;
    RESET)
      # Boot 1 dies on its second RESET (the first is New's handshake).
      if [ "$boot" = "1" ] && [ -f resetonce ]; then exit 7; fi
      touch resetonce
      echo "OK" ;;
    QUERY) echo "OUT b$boot" ;;
  esac
done
`)
	restartsBefore := restartsTotal.Value()
	s, err := New(Config{Command: cmd})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset across a crash: %v", err)
	}
	if s.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1", s.Restarts())
	}
	if got := restartsTotal.Value() - restartsBefore; got < 1 {
		t.Errorf("prognosis_adapter_restarts_total moved by %d, want >= 1", got)
	}
	if out, err := s.Step("a"); err != nil || out != "b2" {
		t.Fatalf("Step after revive = %q, %v; want b2", out, err)
	}
	s.Close()
	testutil.WaitForGoroutines(t, base)
}

func TestSULStartFailures(t *testing.T) {
	base := runtime.NumGoroutine()
	cases := []struct {
		name string
		cmd  string
		want string
	}{
		{"empty command", "   ", "empty adapter command"},
		{"missing binary", "/nonexistent/adapter-binary", "spawning adapter"},
		{"wrong version", adapterScript(t, `
while read -r line; do
  set -- $line
  case $1 in
    HELLO) echo "HELLO 2 a" ;;
    *) echo "OK" ;;
  esac
done
`), "version"},
		{"no alphabet", adapterScript(t, `
while read -r line; do
  echo "HELLO 1"
done
`), "alphabet"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := New(Config{Command: c.cmd, QueryTimeout: 2 * time.Second})
			if err == nil {
				s.Close()
				t.Fatal("New succeeded against a broken adapter")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %v does not mention %q", err, c.want)
			}
		})
	}
	testutil.WaitForGoroutines(t, base)
}
