package adapter

import (
	"errors"
	"strings"
	"testing"
)

// scriptedSUL is a minimal core.SUL for exercising Serve.
type scriptedSUL struct {
	resets int
	steps  []string
}

func (s *scriptedSUL) Reset() error { s.resets++; return nil }

func (s *scriptedSUL) Step(in string) (string, error) {
	if in == "explode" {
		return "", errors.New("kaboom")
	}
	s.steps = append(s.steps, in)
	return "echo " + in, nil
}

func TestServeSession(t *testing.T) {
	in := strings.Join([]string{
		"QUERY a",       // before HELLO: refused
		"HELLO 9",       // wrong version: refused, session stays open
		"HELLO 1",       // handshake
		"RESET",         // -> OK
		"QUERY a%20b",   // -> OUT (symbol with a space, escaped both ways)
		"not a command", // -> ERR, loop keeps serving
		"QUERY explode", // SUL error -> ERR
		"QUERY c",       // still alive
	}, "\n") + "\n"
	sul := &scriptedSUL{}
	var out strings.Builder
	if err := Serve(strings.NewReader(in), &out, []string{"a b", "c"}, sul); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	got := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	want := []struct{ prefix string }{
		{"ERR HELLO%20first"},
		{"ERR unsupported"},
		{"HELLO 1 a%20b c"},
		{"OK"},
		{"OUT echo%20a%20b"},
		{"ERR "},
		{"ERR "},
		{"OUT echo%20c"},
	}
	if len(got) != len(want) {
		t.Fatalf("Serve wrote %d lines, want %d:\n%s", len(got), len(want), out.String())
	}
	for i, w := range want {
		if !strings.HasPrefix(got[i], w.prefix) {
			t.Errorf("reply %d = %q, want prefix %q", i, got[i], w.prefix)
		}
	}
	if sul.resets != 1 {
		t.Errorf("SUL saw %d resets, want 1", sul.resets)
	}
	if len(sul.steps) != 2 || sul.steps[0] != "a b" || sul.steps[1] != "c" {
		t.Errorf("SUL saw steps %v, want [a b, c] (space unescaped)", sul.steps)
	}
	// The kaboom ERR must carry the SUL's message through escaping.
	if !strings.Contains(got[6], "kaboom") {
		t.Errorf("SUL error lost in %q", got[6])
	}
}

// TestServeSULRoundTrip closes the loop engine-side: a SUL subprocess
// whose adapter end is this package's own Serve must behave exactly
// like the in-process SUL it wraps. The subprocess is sh running a tiny
// session transcript through a pipe-connected Serve is impractical in
// sh, so instead this drives Serve directly with EncodeCommand lines
// and parses replies with ParseReply — the same codec the SUL uses.
func TestServeSULRoundTrip(t *testing.T) {
	symbols := []string{"SYN(?,?,0)", "ACK+PSH(?,?,1)[OOO]", "with space", ""}
	var lines []string
	for _, c := range []Command{{Kind: CmdHello, Version: Version}, {Kind: CmdReset}} {
		l, err := EncodeCommand(c)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	for _, s := range symbols {
		l, err := EncodeCommand(Command{Kind: CmdQuery, Input: s})
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, l)
	}
	sul := &scriptedSUL{}
	var out strings.Builder
	if err := Serve(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out, symbols, sul); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	replies := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(replies) != 2+len(symbols) {
		t.Fatalf("got %d replies, want %d", len(replies), 2+len(symbols))
	}
	hello, err := ParseReply(replies[0])
	if err != nil || hello.Kind != RepHello || hello.Version != Version {
		t.Fatalf("handshake reply %q: %+v, %v", replies[0], hello, err)
	}
	if len(hello.Alphabet) != len(symbols) {
		t.Fatalf("alphabet %v, want %v", hello.Alphabet, symbols)
	}
	for i, s := range symbols {
		if hello.Alphabet[i] != s {
			t.Errorf("alphabet[%d] = %q, want %q", i, hello.Alphabet[i], s)
		}
	}
	for i, s := range symbols {
		rep, err := ParseReply(replies[2+i])
		if err != nil || rep.Kind != RepOut {
			t.Fatalf("reply to QUERY %q: %q, %v", s, replies[2+i], err)
		}
		if want := "echo " + s; strings.Join(rep.Outputs, " ") != want {
			t.Errorf("QUERY %q answered %v, want %q", s, rep.Outputs, want)
		}
	}
}
