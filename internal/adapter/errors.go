package adapter

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel causes an *Error can wrap; test with errors.Is.
var (
	// ErrDeadline marks a query that outlived Config.QueryTimeout. The
	// stream is desynced after a late reply, so a deadline always costs
	// a restart.
	ErrDeadline = errors.New("adapter: query deadline exceeded")
	// ErrRestartsExhausted marks an operation that kept failing after
	// Config.MaxRestarts restart-and-replay attempts.
	ErrRestartsExhausted = errors.New("adapter: restart budget exhausted")
)

// Operation names for Error.Op.
const (
	// OpStart is spawning or handshaking the subprocess.
	OpStart = "start"
	// OpReset is a RESET round-trip.
	OpReset = "reset"
	// OpQuery is a QUERY round-trip.
	OpQuery = "query"
	// OpExit is the subprocess dying (crash, kill, clean exit) while
	// the engine still needed it.
	OpExit = "exit"
	// OpAnswer is the adapter itself reporting ERR — a deliberate
	// protocol-level answer, not a transport failure, so the engine
	// surfaces it without restarting the subprocess.
	OpAnswer = "answer"
)

// Error is the typed adapter failure every SUL operation returns: which
// operation failed, against which command, why, and — when the
// subprocess died — the tail of its stderr. It wraps the underlying
// cause (ErrDeadline, a *ProtoError, an exec exit error), so errors.Is
// and errors.As keep working through it.
type Error struct {
	// Op is one of the Op* constants.
	Op string
	// Cmd is the adapter command line.
	Cmd string
	// Reason says what went wrong.
	Reason string
	// Stderr is the tail of the subprocess's stderr, when one died.
	Stderr string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adapter %s", e.Op)
	if e.Cmd != "" {
		fmt.Fprintf(&b, " (%s)", e.Cmd)
	}
	if e.Reason != "" {
		b.WriteString(": ")
		b.WriteString(e.Reason)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	if e.Stderr != "" {
		fmt.Fprintf(&b, " [stderr: %s]", strings.TrimSpace(e.Stderr))
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// reported reports whether err is the adapter answering ERR — a
// protocol-level answer that must surface to the learner as-is rather
// than trigger a restart.
func reported(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Op == OpAnswer
}
