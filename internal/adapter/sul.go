package adapter

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Process-wide adapter counters, scraped alongside every other family
// (docs/MONITORING.md). prognosis learn -metrics dumps them for CI.
var (
	queriesTotal = metrics.Default().Counter("prognosis_adapter_queries_total",
		"Symbols sent to subprocess adapters over the stdio protocol.")
	restartsTotal = metrics.Default().Counter("prognosis_adapter_restarts_total",
		"Adapter subprocess restarts (crash, query deadline, or protocol desync).")
	divergenceTotal = metrics.Default().Counter("prognosis_adapter_replay_divergence_total",
		"Replayed prefix symbols whose answer changed after an adapter restart.")
	querySeconds = metrics.Default().Histogram("prognosis_adapter_query_seconds",
		"Latency of one adapter QUERY round-trip.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5})
)

// Config describes one adapter subprocess.
type Config struct {
	// Command is the adapter command line, split on whitespace and run
	// directly (no shell) so crash handling and CI kill tests hit the
	// adapter binary itself, never an intermediate sh.
	Command string
	// QueryTimeout bounds every protocol round-trip (handshake, RESET,
	// QUERY). Default 5s. After a timeout the reply stream is
	// desynced, so a deadline always costs a restart.
	QueryTimeout time.Duration
	// MaxRestarts bounds the restart-and-replay attempts one Reset or
	// Step operation may consume before giving up with
	// ErrRestartsExhausted. Default 3.
	MaxRestarts int
	// OnRestart, when non-nil, observes every restart with the
	// lifetime restart count and the reason. The lab builder forwards
	// it as a typed learn event.
	OnRestart func(restarts int, reason string)
}

// step is one input and the answer the live subprocess gave for it,
// recorded since the last Reset so a crashed word can be replayed.
type step struct {
	in, out string
}

// SUL runs one adapter subprocess as a core.SUL. It is not safe for
// concurrent use; the pool gives each worker its own (New per
// replica).
//
// Crash handling is restart-and-replay: when the subprocess dies,
// times out, or desyncs the protocol mid-word, the SUL respawns it,
// replays the inputs recorded since the last Reset, and answers the
// current query fresh. Replay answers are not required to match the
// pre-crash ones — the fresh answers win, and if an earlier answer for
// the same word is now stale, the engine's §5 guard surfaces it as an
// inconsistency that the cache-repair path (learn.Store.Refresh)
// already heals. A divergence is therefore a counter
// (prognosis_adapter_replay_divergence_total), never a wrong answer
// silently kept.
type SUL struct {
	cfg      Config
	argv     []string
	p        *proc
	alphabet []string
	word     []step
	restarts int
}

// New spawns the adapter subprocess and performs the HELLO handshake,
// returning the SUL with the adapter's advertised alphabet.
func New(cfg Config) (*SUL, error) {
	argv := strings.Fields(cfg.Command)
	if len(argv) == 0 {
		return nil, &Error{Op: OpStart, Reason: "empty adapter command"}
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Second
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	s := &SUL{cfg: cfg, argv: argv}
	if err := s.spawn(); err != nil {
		return nil, err
	}
	return s, nil
}

// Alphabet returns the input alphabet the adapter advertised in its
// HELLO reply.
func (s *SUL) Alphabet() []string { return append([]string(nil), s.alphabet...) }

// Restarts returns the lifetime restart count.
func (s *SUL) Restarts() int { return s.restarts }

// spawn starts the subprocess and runs the HELLO handshake. On
// success s.p is live and the implementation is in its initial state
// (a fresh process is, by definition, unreset-but-initial; spawn still
// sends RESET so adapters wrapping stateful harnesses start clean).
func (s *SUL) spawn() error {
	p, err := startProc(s.argv)
	if err != nil {
		return &Error{Op: OpStart, Cmd: s.cfg.Command, Reason: "spawning adapter", Err: err}
	}
	r, err := s.roundTrip(p, Command{Kind: CmdHello, Version: Version})
	if err != nil {
		p.stop()
		return err
	}
	if r.Kind != RepHello {
		p.stop()
		return &Error{Op: OpStart, Cmd: s.cfg.Command,
			Reason: fmt.Sprintf("handshake answered %s, want HELLO", r.Kind)}
	}
	if r.Version != Version {
		p.stop()
		return &Error{Op: OpStart, Cmd: s.cfg.Command,
			Reason: fmt.Sprintf("adapter speaks protocol version %d, engine speaks %d", r.Version, Version)}
	}
	if s.alphabet == nil {
		s.alphabet = r.Alphabet
	} else if !equalStrings(s.alphabet, r.Alphabet) {
		p.stop()
		return &Error{Op: OpStart, Cmd: s.cfg.Command,
			Reason: "adapter advertised a different alphabet after restart"}
	}
	if r, err = s.roundTrip(p, Command{Kind: CmdReset}); err != nil {
		p.stop()
		return err
	}
	if r.Kind != RepOK {
		p.stop()
		return &Error{Op: OpReset, Cmd: s.cfg.Command,
			Reason: fmt.Sprintf("initial RESET answered %s, want OK", r.Kind)}
	}
	s.p = p
	return nil
}

// roundTrip sends one command on p and parses the reply.
func (s *SUL) roundTrip(p *proc, c Command) (Reply, error) {
	line, err := EncodeCommand(c)
	if err != nil {
		return Reply{}, err
	}
	if err := p.send(line); err != nil {
		return Reply{}, err
	}
	resp, err := p.recv(s.cfg.QueryTimeout)
	if err != nil {
		return Reply{}, err
	}
	r, err := ParseReply(resp)
	if err != nil {
		return Reply{}, &Error{Op: OpQuery, Cmd: s.cfg.Command, Reason: "unparseable reply", Err: err}
	}
	return r, nil
}

// teardown kills the current subprocess (nil-safe).
func (s *SUL) teardown() {
	if s.p != nil {
		s.p.stop()
		s.p = nil
	}
}

// revive restarts a dead subprocess and replays the inputs recorded
// since the last Reset, leaving the implementation mid-word where the
// crash interrupted it. Divergent replay answers are counted and the
// fresh answer kept (see the SUL doc comment).
func (s *SUL) revive(reason error) error {
	s.restarts++
	restartsTotal.Inc()
	if s.cfg.OnRestart != nil {
		why := "unknown"
		if reason != nil {
			why = reason.Error()
		}
		s.cfg.OnRestart(s.restarts, why)
	}
	if err := s.spawn(); err != nil {
		return err
	}
	for i := range s.word {
		r, err := s.roundTrip(s.p, Command{Kind: CmdQuery, Input: s.word[i].in})
		if err != nil {
			s.teardown()
			return err
		}
		switch r.Kind {
		case RepOut:
			if out := strings.Join(r.Outputs, " "); out != s.word[i].out {
				divergenceTotal.Inc()
				s.word[i].out = out
			}
		case RepErr:
			s.teardown()
			return &Error{Op: OpAnswer, Cmd: s.cfg.Command,
				Reason: fmt.Sprintf("replaying %q: %s", s.word[i].in, r.Msg)}
		default:
			s.teardown()
			return &Error{Op: OpQuery, Cmd: s.cfg.Command,
				Reason: fmt.Sprintf("replay answered %s, want OUT", r.Kind)}
		}
	}
	return nil
}

// Reset implements core.SUL: return the implementation to its initial
// state. A dead subprocess is revived (bounded by MaxRestarts).
func (s *SUL) Reset() error {
	s.word = nil
	var lastErr error
	for attempt := 0; attempt <= s.cfg.MaxRestarts; attempt++ {
		if s.p == nil {
			if err := s.revive(lastErr); err != nil {
				if reported(err) {
					return err
				}
				lastErr = err
				continue
			}
			// revive spawns reset with an empty word: done.
			return nil
		}
		r, err := s.roundTrip(s.p, Command{Kind: CmdReset})
		if err == nil {
			switch r.Kind {
			case RepOK:
				return nil
			case RepErr:
				return &Error{Op: OpAnswer, Cmd: s.cfg.Command, Reason: "RESET failed: " + r.Msg}
			default:
				err = &Error{Op: OpReset, Cmd: s.cfg.Command,
					Reason: fmt.Sprintf("RESET answered %s, want OK", r.Kind)}
			}
		}
		lastErr = err
		s.teardown()
	}
	return &Error{Op: OpReset, Cmd: s.cfg.Command,
		Reason: fmt.Sprintf("giving up after %d restarts", s.cfg.MaxRestarts),
		Err:    errors.Join(ErrRestartsExhausted, lastErr)}
}

// Step implements core.SUL: run one input symbol and return the
// abstract output. Crashes, deadlines, and protocol desyncs trigger
// restart-and-replay (bounded by MaxRestarts); an ERR reply from the
// adapter surfaces as a typed *Error without a restart.
func (s *SUL) Step(in string) (string, error) {
	queriesTotal.Inc()
	start := time.Now()
	defer func() { querySeconds.Observe(time.Since(start).Seconds()) }()
	var lastErr error
	for attempt := 0; attempt <= s.cfg.MaxRestarts; attempt++ {
		if s.p == nil {
			if err := s.revive(lastErr); err != nil {
				if reported(err) {
					return "", err
				}
				lastErr = err
				continue
			}
		}
		r, err := s.roundTrip(s.p, Command{Kind: CmdQuery, Input: in})
		if err == nil {
			switch r.Kind {
			case RepOut:
				out := strings.Join(r.Outputs, " ")
				s.word = append(s.word, step{in: in, out: out})
				return out, nil
			case RepErr:
				return "", &Error{Op: OpAnswer, Cmd: s.cfg.Command,
					Reason: fmt.Sprintf("QUERY %q failed: %s", in, r.Msg)}
			default:
				err = &Error{Op: OpQuery, Cmd: s.cfg.Command,
					Reason: fmt.Sprintf("QUERY answered %s, want OUT", r.Kind)}
			}
		}
		lastErr = err
		s.teardown()
	}
	return "", &Error{Op: OpQuery, Cmd: s.cfg.Command,
		Reason: fmt.Sprintf("giving up after %d restarts", s.cfg.MaxRestarts),
		Err:    errors.Join(ErrRestartsExhausted, lastErr)}
}

// Close reaps the subprocess and its pump goroutines. Always safe.
func (s *SUL) Close() error {
	s.teardown()
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
