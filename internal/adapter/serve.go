package adapter

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// Serve speaks the adapter side of the protocol on r/w on behalf of
// sul: it answers HELLO with the given alphabet, maps RESET and QUERY
// onto the SUL, and renders SUL errors as ERR replies. Malformed lines
// get an ERR reply and the loop keeps serving (the engine decides
// whether to give up); EOF on r is a clean shutdown. cmd/refadapter is
// the canonical caller, and any Go implementation can expose itself
// the same way:
//
//	adapter.Serve(os.Stdin, os.Stdout, myAlphabet, mySUL)
func Serve(r io.Reader, w io.Writer, alphabet []string, sul core.SUL) error {
	br := bufio.NewReaderSize(r, 32*1024)
	bw := bufio.NewWriter(w)
	reply := func(rep Reply) error {
		line, err := EncodeReply(rep)
		if err != nil {
			return err
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	greeted := false
	for {
		line, err := readLine(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// An overlong line leaves the stream unframed: report and
			// stop rather than resynchronise on garbage.
			_ = reply(Reply{Kind: RepErr, Msg: err.Error()})
			return err
		}
		cmd, err := ParseCommand(line)
		if err != nil {
			if rerr := reply(Reply{Kind: RepErr, Msg: err.Error()}); rerr != nil {
				return rerr
			}
			continue
		}
		if cmd.Kind != CmdHello && !greeted {
			if err := reply(Reply{Kind: RepErr, Msg: "HELLO first"}); err != nil {
				return err
			}
			continue
		}
		switch cmd.Kind {
		case CmdHello:
			if cmd.Version != Version {
				if err := reply(Reply{Kind: RepErr,
					Msg: fmt.Sprintf("unsupported protocol version %d (speaking %d)", cmd.Version, Version)}); err != nil {
					return err
				}
				continue
			}
			greeted = true
			if err := reply(Reply{Kind: RepHello, Version: Version, Alphabet: alphabet}); err != nil {
				return err
			}
		case CmdReset:
			if err := sul.Reset(); err != nil {
				if rerr := reply(Reply{Kind: RepErr, Msg: err.Error()}); rerr != nil {
					return rerr
				}
				continue
			}
			if err := reply(Reply{Kind: RepOK}); err != nil {
				return err
			}
		case CmdQuery:
			out, err := sul.Step(cmd.Input)
			if err != nil {
				if rerr := reply(Reply{Kind: RepErr, Msg: err.Error()}); rerr != nil {
					return rerr
				}
				continue
			}
			if err := reply(Reply{Kind: RepOut, Outputs: []string{out}}); err != nil {
				return err
			}
		}
	}
}
