package adapter

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// stderrTail keeps the last stderrKeep bytes a subprocess wrote to
// stderr, for crash diagnostics.
const stderrKeep = 2048

type stderrTail struct {
	mu  sync.Mutex
	buf []byte
}

func (t *stderrTail) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > stderrKeep {
		t.buf = t.buf[len(t.buf)-stderrKeep:]
	}
	return len(p), nil
}

func (t *stderrTail) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}

// proc is one live adapter subprocess: its pipes, a reader goroutine
// pumping stdout lines into a channel, and the machinery to reap it
// without leaking goroutines. proc is not safe for concurrent use —
// each pool worker owns one.
type proc struct {
	argv  []string
	cmd   *exec.Cmd
	stdin io.WriteCloser
	// lines carries stdout lines; the reader closes it on EOF or a
	// protocol-level read failure (recorded in readErr first).
	lines   chan string
	readErr error
	stderr  *stderrTail
	// waitDone closes after cmd.Wait returned; waitErr is valid then.
	waitDone chan struct{}
	waitErr  error
	killOnce sync.Once
}

// startProc spawns argv with piped stdio and begins pumping its
// stdout.
func startProc(argv []string) (*proc, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	tail := &stderrTail{}
	cmd.Stderr = tail
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{
		argv:     argv,
		cmd:      cmd,
		stdin:    stdin,
		lines:    make(chan string, 64),
		stderr:   tail,
		waitDone: make(chan struct{}),
	}
	go func() {
		br := bufio.NewReaderSize(stdout, 32*1024)
		for {
			line, err := readLine(br)
			if err != nil {
				if err != io.EOF {
					p.readErr = err
				}
				break
			}
			p.lines <- line
		}
		close(p.lines)
		p.waitErr = cmd.Wait()
		close(p.waitDone)
	}()
	return p, nil
}

// send writes one protocol line. A write failure means the subprocess
// died (or closed stdin), reported as an OpExit error.
func (p *proc) send(line string) error {
	if _, err := io.WriteString(p.stdin, line+"\n"); err != nil {
		return p.died(err)
	}
	return nil
}

// recv returns the next stdout line, waiting at most d. A closed line
// stream means the subprocess is gone (or desynced the protocol); a
// timeout is ErrDeadline.
func (p *proc) recv(d time.Duration) (string, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case line, ok := <-p.lines:
		if !ok {
			return "", p.died(nil)
		}
		return line, nil
	case <-timer.C:
		return "", &Error{Op: OpQuery, Cmd: p.name(), Err: ErrDeadline}
	}
}

// died diagnoses a dead (or dying) subprocess: it reaps the process —
// killing it if stdout closed without an exit — and renders the exit
// status plus the stderr tail. cause, when non-nil, is the I/O error
// that revealed the death.
func (p *proc) died(cause error) error {
	select {
	case <-p.waitDone:
	case <-time.After(2 * time.Second):
		p.kill()
		<-p.waitDone
	}
	if p.readErr != nil {
		// The reader stopped on a protocol violation (overlong line),
		// not process death.
		return &Error{Op: OpQuery, Cmd: p.name(), Reason: "stdout desynced", Err: p.readErr, Stderr: p.stderr.String()}
	}
	err := cause
	if err == nil {
		err = p.waitErr
	}
	reason := "subprocess exited"
	if p.waitErr != nil {
		reason = fmt.Sprintf("subprocess died (%v)", p.waitErr)
	}
	return &Error{Op: OpExit, Cmd: p.name(), Reason: reason, Err: err, Stderr: p.stderr.String()}
}

func (p *proc) kill() {
	p.killOnce.Do(func() {
		p.stdin.Close()
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
	})
}

// stop tears the subprocess down and joins every goroutine it owns:
// kill, drain the line channel so the reader can finish, then wait for
// the reaper. Safe to call repeatedly and on an already-dead proc.
func (p *proc) stop() {
	p.kill()
	for range p.lines {
	}
	<-p.waitDone
}

func (p *proc) name() string {
	if len(p.argv) == 0 {
		return ""
	}
	return p.argv[0]
}
