package adapter

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestCommandRoundTrip(t *testing.T) {
	cases := []struct {
		cmd  Command
		line string
	}{
		{Command{Kind: CmdHello, Version: 1}, "HELLO 1"},
		{Command{Kind: CmdReset}, "RESET"},
		{Command{Kind: CmdQuery, Input: "SYN(?,?,0)"}, "QUERY SYN(?,?,0)"},
		{Command{Kind: CmdQuery, Input: "a b"}, "QUERY a%20b"},
		{Command{Kind: CmdQuery, Input: "100%"}, "QUERY 100%25"},
		{Command{Kind: CmdQuery, Input: ""}, "QUERY %"},
		{Command{Kind: CmdQuery, Input: "tab\there"}, "QUERY tab%09here"},
		{Command{Kind: CmdQuery, Input: "Σ"}, "QUERY %CE%A3"},
	}
	for _, c := range cases {
		line, err := EncodeCommand(c.cmd)
		if err != nil {
			t.Fatalf("EncodeCommand(%+v): %v", c.cmd, err)
		}
		if line != c.line {
			t.Errorf("EncodeCommand(%+v) = %q, want %q", c.cmd, line, c.line)
		}
		got, err := ParseCommand(line)
		if err != nil {
			t.Fatalf("ParseCommand(%q): %v", line, err)
		}
		if got != c.cmd {
			t.Errorf("round trip of %+v came back %+v", c.cmd, got)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	cases := []struct {
		rep  Reply
		line string
	}{
		{Reply{Kind: RepHello, Version: 1, Alphabet: []string{"a", "b c"}}, "HELLO 1 a b%20c"},
		{Reply{Kind: RepOK}, "OK"},
		{Reply{Kind: RepOut, Outputs: []string{"{}"}}, "OUT {}"},
		{Reply{Kind: RepOut, Outputs: []string{"SYN+ACK(?,?,0)", ""}}, "OUT SYN+ACK(?,?,0) %"},
		{Reply{Kind: RepErr, Msg: "it broke: badly"}, "ERR it%20broke:%20badly"},
		{Reply{Kind: RepErr}, "ERR %"},
	}
	for _, c := range cases {
		line, err := EncodeReply(c.rep)
		if err != nil {
			t.Fatalf("EncodeReply(%+v): %v", c.rep, err)
		}
		if line != c.line {
			t.Errorf("EncodeReply(%+v) = %q, want %q", c.rep, line, c.line)
		}
		got, err := ParseReply(line)
		if err != nil {
			t.Fatalf("ParseReply(%q): %v", line, err)
		}
		if !reflect.DeepEqual(got, c.rep) {
			t.Errorf("round trip of %+v came back %+v", c.rep, got)
		}
	}
}

func TestParseCommandErrors(t *testing.T) {
	lines := []string{
		"",
		" ",
		"HELLO",
		"HELLO one",
		"HELLO 0",
		"HELLO 1 2",
		"RESET please",
		"QUERY",
		"QUERY a b",
		"QUERY  a",
		"QUERY a ",
		" QUERY a",
		"QUERY %4",
		"QUERY %zz",
		"QUERY a\x01b",
		"FROB x",
		"query a",
		strings.Repeat("a", MaxLine+1),
	}
	for _, line := range lines {
		_, err := ParseCommand(line)
		if err == nil {
			t.Errorf("ParseCommand(%.40q) accepted a hostile line", line)
			continue
		}
		var pe *ProtoError
		if !errors.As(err, &pe) {
			t.Errorf("ParseCommand(%.40q) error %T is not a *ProtoError", line, err)
		}
	}
}

func TestParseReplyErrors(t *testing.T) {
	lines := []string{
		"",
		"OUT",
		"OK now",
		"ERR",
		"ERR a b",
		"HELLO",
		"HELLO 1",
		"HELLO nope a",
		"HELLO -1 a",
		"OUT %GG",
		"OUT a\x7fb",
		"BANANAS",
		"out a",
		strings.Repeat("b", MaxLine+1),
	}
	for _, line := range lines {
		_, err := ParseReply(line)
		if err == nil {
			t.Errorf("ParseReply(%.40q) accepted a hostile line", line)
			continue
		}
		var pe *ProtoError
		if !errors.As(err, &pe) {
			t.Errorf("ParseReply(%.40q) error %T is not a *ProtoError", line, err)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := EncodeCommand(Command{Kind: "NOPE"}); err == nil {
		t.Error("EncodeCommand accepted an unknown kind")
	}
	if _, err := EncodeCommand(Command{Kind: CmdHello, Version: 0}); err == nil {
		t.Error("EncodeCommand accepted HELLO version 0")
	}
	if _, err := EncodeReply(Reply{Kind: "NOPE"}); err == nil {
		t.Error("EncodeReply accepted an unknown kind")
	}
	if _, err := EncodeReply(Reply{Kind: RepHello, Version: 1}); err == nil {
		t.Error("EncodeReply accepted a HELLO with no alphabet")
	}
	if _, err := EncodeReply(Reply{Kind: RepOut}); err == nil {
		t.Error("EncodeReply accepted an OUT with no symbols")
	}
}

// FuzzAdapterProto is the protocol-codec fuzz gate registered in CI's
// fuzz-smoke: any line either parses into a message that re-encodes and
// re-parses to the same value, or fails with a typed *ProtoError — and
// any symbol survives a QUERY encode/parse round trip. No input may
// panic or hang the codec.
func FuzzAdapterProto(f *testing.F) {
	f.Add("HELLO 1")
	f.Add("HELLO 1 SYN(?,?,0) ACK(?,?,0)")
	f.Add("RESET")
	f.Add("QUERY INITIAL(?,?)[CRYPTO]")
	f.Add("QUERY %")
	f.Add("QUERY %25%20%0A")
	f.Add("OK")
	f.Add("OUT {HANDSHAKE(?,?)[ACK,CRYPTO]}")
	f.Add("OUT a b c")
	f.Add("ERR boom")
	f.Add("QUERY %zz")
	f.Add("QUERY a\x00b")
	f.Add("HELLO 99999999999999999999")
	f.Add(strings.Repeat("A", 300))
	f.Fuzz(func(t *testing.T, line string) {
		if cmd, err := ParseCommand(line); err == nil {
			enc, err := EncodeCommand(cmd)
			if err != nil {
				t.Fatalf("parsed command %+v does not re-encode: %v", cmd, err)
			}
			back, err := ParseCommand(enc)
			if err != nil {
				t.Fatalf("re-encoded command %q does not re-parse: %v", enc, err)
			}
			if back != cmd {
				t.Fatalf("command round trip drifted: %+v -> %q -> %+v", cmd, enc, back)
			}
		} else {
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseCommand error %T (%v) is not a *ProtoError", err, err)
			}
		}
		if rep, err := ParseReply(line); err == nil {
			enc, err := EncodeReply(rep)
			if err != nil {
				t.Fatalf("parsed reply %+v does not re-encode: %v", rep, err)
			}
			back, err := ParseReply(enc)
			if err != nil {
				t.Fatalf("re-encoded reply %q does not re-parse: %v", enc, err)
			}
			if !reflect.DeepEqual(back, rep) {
				t.Fatalf("reply round trip drifted: %+v -> %q -> %+v", rep, enc, back)
			}
		} else {
			var pe *ProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseReply error %T (%v) is not a *ProtoError", err, err)
			}
		}
		// Any byte string is a legal symbol: QUERY must carry it losslessly
		// (as long as the escaped form fits in one line).
		enc, err := EncodeCommand(Command{Kind: CmdQuery, Input: line})
		if err != nil {
			t.Fatalf("EncodeCommand(QUERY %.40q): %v", line, err)
		}
		if len(enc) <= MaxLine {
			back, err := ParseCommand(enc)
			if err != nil {
				t.Fatalf("escaped QUERY %q does not parse: %v", enc, err)
			}
			if back.Input != line {
				t.Fatalf("symbol %.40q did not survive the wire: got %.40q", line, back.Input)
			}
		}
	})
}
