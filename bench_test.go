// Package repro_test is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see the experiment index in DESIGN.md
// and the recorded outcomes in EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/learn"
	"repro/internal/netem"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/synth"
	"repro/internal/transport"
)

// BenchmarkLearnTCPHandshake — Fig. 3(b): learn the handshake fragment over
// the two-symbol alphabet.
func BenchmarkLearnTCPHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sul := lab.NewTCP(1)
		exp := &core.Experiment{Alphabet: []string{"SYN(?,?,0)", "ACK(?,?,0)"}, SUL: sul, Seed: 1}
		m, err := exp.Learn(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if m.NumStates() < 3 {
			b.Fatalf("degenerate model: %d states", m.NumStates())
		}
	}
}

// BenchmarkLearnTCPFull — §6.1: the full seven-symbol TCP alphabet
// (paper: 6 states, 42 transitions, 4,726 membership queries).
func BenchmarkLearnTCPFull(b *testing.B) {
	var queries int64
	for i := 0; i < b.N; i++ {
		res, err := lab.Run(context.Background(), lab.TargetTCP, lab.WithSeed(13))
		if err != nil {
			b.Fatal(err)
		}
		if res.Machine.NumStates() != 6 {
			b.Fatalf("states = %d, want 6", res.Machine.NumStates())
		}
		queries = res.Stats.Queries
	}
	b.ReportMetric(float64(queries), "queries")
}

// BenchmarkLearnTCPFull_NoCache — ablation: the same run without the
// membership-query cache.
func BenchmarkLearnTCPFull_NoCache(b *testing.B) {
	var queries int64
	for i := 0; i < b.N; i++ {
		res, err := lab.Run(context.Background(), lab.TargetTCP, lab.WithSeed(13), lab.WithoutCache())
		if err != nil {
			b.Fatal(err)
		}
		queries = res.Stats.Queries
	}
	b.ReportMetric(float64(queries), "queries")
}

// BenchmarkLearnGoogleQUIC — §6.2.2: learn the Google QUIC profile
// (paper: 12 states, 84 transitions, 24,301 queries).
func BenchmarkLearnGoogleQUIC(b *testing.B) {
	var queries int64
	for i := 0; i < b.N; i++ {
		res, err := lab.Run(context.Background(), lab.TargetGoogle, lab.WithSeed(13), lab.WithPerfectEquivalence())
		if err != nil {
			b.Fatal(err)
		}
		if res.Machine.NumStates() != 12 {
			b.Fatalf("states = %d, want 12", res.Machine.NumStates())
		}
		queries = res.Stats.Queries
	}
	b.ReportMetric(float64(queries), "queries")
}

// BenchmarkLearnQuiche — §6.2.2: learn the Quiche profile
// (paper: 8 states, 56 transitions, 12,301 queries).
func BenchmarkLearnQuiche(b *testing.B) {
	var queries int64
	for i := 0; i < b.N; i++ {
		res, err := lab.Run(context.Background(), lab.TargetQuiche, lab.WithSeed(13), lab.WithPerfectEquivalence())
		if err != nil {
			b.Fatal(err)
		}
		if res.Machine.NumStates() != 8 {
			b.Fatalf("states = %d, want 8", res.Machine.NumStates())
		}
		queries = res.Stats.Queries
	}
	b.ReportMetric(float64(queries), "queries")
}

// BenchmarkLearnerComparison — ablation: L* vs the discrimination-tree
// learner on the same target (live query counts with the cache enabled).
func BenchmarkLearnerComparison(b *testing.B) {
	for _, kind := range []core.LearnerKind{core.LearnerLStar, core.LearnerTTT} {
		b.Run(string(kind), func(b *testing.B) {
			var queries int64
			for i := 0; i < b.N; i++ {
				res, err := lab.Run(context.Background(), lab.TargetQuiche, lab.WithSeed(13), lab.WithPerfectEquivalence(), lab.WithLearner(kind))
				if err != nil {
					b.Fatal(err)
				}
				queries = res.Stats.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// BenchmarkPooledLearning — the concurrent query engine: a full
// QUIC-profile learn against a latency-bearing target (one emulated
// network round-trip per exchange, as in the paper's containerised
// deployment), sequential vs fanned across a sharded SUL pool. Learning is
// dominated by membership-query latency, so keeping `workers` queries in
// flight cuts wall-clock near-linearly; the learned model and live query
// counts are identical across all settings.
func BenchmarkPooledLearning(b *testing.B) {
	const rtt = 200 * time.Microsecond
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var queries int64
			for i := 0; i < b.N; i++ {
				res, err := lab.Run(context.Background(), lab.TargetGoogle,
					lab.WithSeed(13), lab.WithPerfectEquivalence(),
					lab.WithWorkers(workers), lab.WithRTT(rtt))
				if err != nil {
					b.Fatal(err)
				}
				if res.Machine.NumStates() != 12 {
					b.Fatalf("states = %d, want 12", res.Machine.NumStates())
				}
				queries = res.Stats.Queries
			}
			b.ReportMetric(float64(queries), "queries")
		})
	}
}

// BenchmarkPooledLearningInProcess — the same sweep against the in-process
// simulator (no emulated latency): how much the pool buys when queries are
// pure CPU. On a single-core host this is a wash; on multicore hosts the
// crypto-heavy wire path parallelises.
func BenchmarkPooledLearningInProcess(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := lab.Run(context.Background(), lab.TargetGoogle,
					lab.WithSeed(13), lab.WithPerfectEquivalence(), lab.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if res.Machine.NumStates() != 12 {
					b.Fatalf("states = %d, want 12", res.Machine.NumStates())
				}
			}
		})
	}
}

// BenchmarkLearnUnderLoss — learning through an impaired link: a full
// Google-profile learn across a loss grid and worker counts, reporting
// live queries (SUL executions including guard votes), guard votes beyond
// the clean floor, and escalations per cell. The learned model must stay
// identical to the clean ground truth at every cell: the adaptive guard's
// job is to outvote the link, not to model it. The two guard=* cells pin
// the adaptive-vs-provisioned comparison at 5% loss: adaptive voting must
// beat a guard fixed at its worst-case vote floor on total queries.
func BenchmarkLearnUnderLoss(b *testing.B) {
	learn := func(b *testing.B, workers int, loss float64, extra ...lab.Option) *lab.Result {
		b.Helper()
		opts := append([]lab.Option{
			lab.WithSeed(13), lab.WithPerfectEquivalence(), lab.WithWorkers(workers),
		}, extra...)
		if loss > 0 {
			opts = append(opts, lab.WithImpairment(netem.Config{
				LossClient: loss, LossServer: loss, Seed: 99,
			}))
		}
		res, err := lab.Run(context.Background(), lab.TargetGoogle, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if res.Nondet != nil {
			b.Fatalf("guard gave up: %v", res.Nondet)
		}
		if res.Machine.NumStates() != 12 {
			b.Fatalf("states = %d, want 12", res.Machine.NumStates())
		}
		return res
	}
	for _, loss := range []float64{0, 0.01, 0.05} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("loss=%g%%/workers=%d", loss*100, workers), func(b *testing.B) {
				var res *lab.Result
				for i := 0; i < b.N; i++ {
					res = learn(b, workers, loss)
				}
				rm := res.Metrics()
				b.ReportMetric(float64(rm.Learner.Queries), "queries")
				b.ReportMetric(float64(rm.Guard.Votes), "votes")
				b.ReportMetric(float64(rm.Guard.WastedVotes), "wasted-votes")
				b.ReportMetric(float64(rm.Guard.Escalations), "escalations")
			})
		}
	}
	// The comparison the adaptive guard exists for: at 5% loss, scaling
	// votes to observed flakiness must cost fewer total queries than
	// provisioning every query at a fixed worst-case floor.
	guards := []struct {
		name string
		cfg  core.GuardConfig
	}{
		{"guard=adaptive", core.DefaultAdaptiveGuard()},
		{"guard=fixed-max", func() core.GuardConfig {
			cfg := core.DefaultAdaptiveGuard()
			cfg.MinVotes = 2 * cfg.ModeVotes // worst-case floor on every query
			return cfg
		}()},
	}
	queries := make(map[string]int64, len(guards))
	for _, g := range guards {
		b.Run(g.name, func(b *testing.B) {
			var res *lab.Result
			for i := 0; i < b.N; i++ {
				res = learn(b, 4, 0.05, lab.WithGuard(g.cfg))
			}
			rm := res.Metrics()
			queries[g.name] = rm.Learner.Queries
			b.ReportMetric(float64(rm.Learner.Queries), "queries")
			b.ReportMetric(float64(rm.Guard.WastedVotes), "wasted-votes")
		})
	}
	if a, f := queries["guard=adaptive"], queries["guard=fixed-max"]; a > 0 && f > 0 && a >= f {
		b.Fatalf("adaptive guard (%d queries) must beat the fixed worst-case guard (%d) at 5%% loss", a, f)
	}
}

// BenchmarkTraceReduction — §6.2.2: counting the 7-symbol trace space and
// the learned models' checking statistics.
func BenchmarkTraceReduction(b *testing.B) {
	google := quicsim.GroundTruth(quicsim.ProfileGoogle)
	quiche := quicsim.GroundTruth(quicsim.ProfileQuiche)
	productive := func(o string) bool { return o != "{}" }
	var total, g, q uint64
	for i := 0; i < b.N; i++ {
		total = google.CountTraces(10) // total machine: the full word count
		g = google.CountTracesFiltered(10, productive)
		q = quiche.CountTracesFiltered(10, productive)
	}
	b.ReportMetric(float64(total), "words")
	b.ReportMetric(float64(g), "google-traces")
	b.ReportMetric(float64(q), "quiche-traces")
}

// BenchmarkNondeterminismCheck — §6.2.4 / Issue 2: cost of detecting the
// mvfst post-close nondeterminism with the voting guard.
func BenchmarkNondeterminismCheck(b *testing.B) {
	// A long post-close probe plus a strict guard makes detection
	// statistically certain per iteration: the chance of eight initial
	// votes agreeing on all eight coin flips is about 3e-6.
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeHD}
	for j := 0; j < 8; j++ {
		word = append(word, quicsim.SymShortHD)
	}
	guard := core.GuardConfig{MinVotes: 8, MaxVotes: 30, Certainty: 0.95}
	for i := 0; i < b.N; i++ {
		setup := lab.NewQUIC(quicsim.ProfileMvfst, lab.QUICOptions{Seed: int64(i) + 1})
		oracle := core.Guard(core.Oracle(setup), guard)
		_, err := oracle.Query(context.Background(), word)
		if _, ok := core.IsNondeterminism(err); !ok {
			b.Fatalf("nondeterminism not detected: %v", err)
		}
	}
}

// BenchmarkGuardVotes — ablation: determinism-check cost as the minimum
// vote count grows (deterministic target, so votes are pure overhead).
func BenchmarkGuardVotes(b *testing.B) {
	for _, votes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("votes=%d", votes), func(b *testing.B) {
			setup := lab.NewQUIC(quicsim.ProfileQuiche, lab.QUICOptions{Seed: 3})
			oracle := core.Guard(core.Oracle(setup), core.GuardConfig{
				MinVotes: votes, MaxVotes: votes * 4, Certainty: 0.9,
			})
			word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := oracle.Query(context.Background(), word); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRetryPortBug — §6.2.5 / Issue 3: the retry exchange with the
// correct and the buggy client.
func BenchmarkRetryPortBug(b *testing.B) {
	word := []string{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto, quicsim.SymHandshakeC}
	for _, buggy := range []bool{false, true} {
		name := "correct-client"
		if buggy {
			name = "buggy-client"
		}
		b.Run(name, func(b *testing.B) {
			setup := lab.NewQUIC(quicsim.ProfileGoogle, lab.QUICOptions{
				Seed: 7, RetryRequired: true, BuggyRetry: buggy,
			})
			for i := 0; i < b.N; i++ {
				if err := setup.Reset(); err != nil {
					b.Fatal(err)
				}
				var last string
				for _, sym := range word {
					out, err := setup.Client.Step(sym)
					if err != nil {
						b.Fatal(err)
					}
					last = out
				}
				if buggy && last != "{}" {
					b.Fatalf("buggy client completed handshake: %q", last)
				}
				if !buggy && last == "{}" {
					b.Fatal("correct client failed handshake")
				}
			}
		})
	}
}

// BenchmarkSynthesizeTCPRegisters — Fig. 3(c)/Fig. 4: register synthesis
// for the TCP handshake numbers.
func BenchmarkSynthesizeTCPRegisters(b *testing.B) {
	res, err := lab.Run(context.Background(), lab.TargetTCP, lab.WithSeed(31))
	if err != nil {
		b.Fatal(err)
	}
	setup := lab.NewTCP(31)
	collect := func(word []string) synth.Trace {
		if err := setup.Reset(); err != nil {
			b.Fatal(err)
		}
		setup.Client.ClearTrace()
		for _, sym := range word {
			if _, err := setup.Client.Step(sym); err != nil {
				b.Fatal(err)
			}
		}
		return lab.TCPSynthTraces(setup.Client.Trace())
	}
	traces := []synth.Trace{
		collect([]string{"SYN(?,?,0)", "ACK(?,?,0)"}),
		collect([]string{"SYN(?,?,0)", "ACK(?,?,0)", "ACK+PSH(?,?,1)"}),
		collect([]string{"ACK(?,?,0)", "SYN(?,?,0)"}),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &synth.Problem{
			Machine: res.Machine, NumRegisters: 1, NumInputParams: 2,
			OutputParams: map[string]int{"SYN+ACK(?,?,0)": 1},
			Consts:       []int64{0}, Positive: traces,
		}
		if _, err := synth.Synthesize(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeStreamDataBlocked — §6.2.6 / Appendix B.1: the Issue 4
// synthesis over the Maximum Stream Data field.
func BenchmarkSynthesizeStreamDataBlocked(b *testing.B) {
	res, err := lab.Run(context.Background(), lab.TargetGoogle, lab.WithSeed(29), lab.WithPerfectEquivalence())
	if err != nil {
		b.Fatal(err)
	}
	setup := lab.NewQUIC(quicsim.ProfileGoogle, lab.QUICOptions{Seed: 29})
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortStream},
	}
	var traces []synth.Trace
	for _, w := range words {
		tr, err := lab.CollectSDBTrace(setup, w, lab.BlockedOutputLabel)
		if err != nil {
			b.Fatal(err)
		}
		traces = append(traces, tr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(lab.SDBProblem(res.Machine, traces)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelDiff — §6.2.3 / Issue 1: comparing the two learned models.
func BenchmarkModelDiff(b *testing.B) {
	google := analysis.NewModel("google", quicsim.GroundTruth(quicsim.ProfileGoogle))
	quiche := analysis.NewModel("quiche", quicsim.GroundTruth(quicsim.ProfileQuiche))
	for i := 0; i < b.N; i++ {
		r := analysis.Diff(google, quiche, 5)
		if r.Equivalent {
			b.Fatal("models must differ")
		}
	}
}

// BenchmarkEquivalence — §5: the Mealy equivalence decision procedure,
// swept over machine size.
func BenchmarkEquivalence(b *testing.B) {
	inputs := []string{"a", "b", "c"}
	outputs := []string{"0", "1"}
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("states=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			m := randomMealy(rng, n, inputs, outputs)
			other := m.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if eq, _ := m.Equivalent(other); !eq {
					b.Fatal("clone not equivalent")
				}
			}
		})
	}
}

// BenchmarkWirePath — substrate cost: one full QUIC handshake over the real
// packet path (encode, HKDF, AES-GCM, header protection, decode).
func BenchmarkWirePath(b *testing.B) {
	setup := lab.NewQUIC(quicsim.ProfileGoogle, lab.QUICOptions{Seed: 7})
	for i := 0; i < b.N; i++ {
		if err := setup.Reset(); err != nil {
			b.Fatal(err)
		}
		if _, err := setup.Client.Step(quicsim.SymInitialCrypto); err != nil {
			b.Fatal(err)
		}
		out, err := setup.Client.Step(quicsim.SymHandshakeC)
		if err != nil {
			b.Fatal(err)
		}
		if out == "{}" {
			b.Fatal("handshake failed")
		}
	}
}

// BenchmarkTCPWirePath — substrate cost: one TCP handshake through binary
// segments with checksums.
func BenchmarkTCPWirePath(b *testing.B) {
	setup := lab.NewTCP(5)
	for i := 0; i < b.N; i++ {
		if err := setup.Reset(); err != nil {
			b.Fatal(err)
		}
		out, err := setup.Client.Step("SYN(?,?,0)")
		if err != nil || out != "SYN+ACK(?,?,0)" {
			b.Fatalf("handshake failed: %q %v", out, err)
		}
	}
}

// BenchmarkModelBasedTestGen — §5: generating and running the W-method
// conformance suite against a live implementation.
func BenchmarkModelBasedTestGen(b *testing.B) {
	quiche := quicsim.GroundTruth(quicsim.ProfileQuiche)
	suite := analysis.WMethodSuite(quiche, 1)
	oracle := learn.MealyOracle(quiche)
	b.ReportMetric(float64(suite.Len()), "tests")
	for i := 0; i < b.N; i++ {
		fails, err := analysis.RunSuite(context.Background(), suite, oracle, 0)
		if err != nil || len(fails) != 0 {
			b.Fatalf("suite run failed: %v %v", fails, err)
		}
	}
}

func randomMealy(r *rand.Rand, states int, inputs, outputs []string) *automata.Mealy {
	m := automata.NewMealy(inputs)
	for m.NumStates() < states {
		m.AddState()
	}
	for s := 0; s < states; s++ {
		for _, in := range inputs {
			m.SetTransition(automata.State(s), in, automata.State(r.Intn(states)), outputs[r.Intn(len(outputs))])
		}
	}
	return m
}

// TestReproduceAllExperiments is a one-shot integration check that every
// headline number of the paper is reproduced; `go test` at the repo root
// re-validates the reproduction end to end.
func TestReproduceAllExperiments(t *testing.T) {
	// T6.1
	tcp, err := lab.Run(context.Background(), lab.TargetTCP, lab.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if tcp.Machine.NumStates() != 6 || tcp.Machine.NumTransitions() != 42 {
		t.Errorf("T6.1: %d/%d, want 6/42", tcp.Machine.NumStates(), tcp.Machine.NumTransitions())
	}
	// T6.2
	google, err := lab.Run(context.Background(), lab.TargetGoogle, lab.WithSeed(13), lab.WithPerfectEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	quiche, err := lab.Run(context.Background(), lab.TargetQuiche, lab.WithSeed(13), lab.WithPerfectEquivalence())
	if err != nil {
		t.Fatal(err)
	}
	if google.Machine.NumStates() != 12 || quiche.Machine.NumStates() != 8 {
		t.Errorf("T6.2: %d/%d states, want 12/8", google.Machine.NumStates(), quiche.Machine.NumStates())
	}
	// I2
	mvfst, err := lab.Run(context.Background(), lab.TargetMvfst, lab.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if mvfst.Nondet == nil {
		t.Error("I2: mvfst nondeterminism not detected")
	}
	// Trace space sanity (§6.2.2).
	if got := google.Machine.CountTraces(10); got != 329554456 {
		t.Errorf("trace space = %d, want 329554456", got)
	}
}

// BenchmarkConformance — ablation: W-method vs Wp-method equivalence
// search over a correct hypothesis (the full-suite cost; Wp's savings come
// from the per-state identification sets).
func BenchmarkConformance(b *testing.B) {
	truth := quicsim.GroundTruth(quicsim.ProfileQuiche)
	b.Run("w-method", func(b *testing.B) {
		var st learn.Stats
		oracle := learn.Counting(learn.MealyOracle(truth), &st)
		eqo := &learn.WMethodOracle{Oracle: oracle, Inputs: truth.Inputs(), Depth: 1}
		for i := 0; i < b.N; i++ {
			st = learn.Stats{}
			if ce, err := eqo.FindCounterexample(context.Background(), truth); err != nil || ce != nil {
				b.Fatalf("ce=%v err=%v", ce, err)
			}
		}
		b.ReportMetric(float64(st.Queries), "queries")
	})
	b.Run("wp-method", func(b *testing.B) {
		var st learn.Stats
		oracle := learn.Counting(learn.MealyOracle(truth), &st)
		eqo := &learn.WpMethodOracle{Oracle: oracle, Inputs: truth.Inputs(), Depth: 1}
		for i := 0; i < b.N; i++ {
			st = learn.Stats{}
			if ce, err := eqo.FindCounterexample(context.Background(), truth); err != nil || ce != nil {
				b.Fatalf("ce=%v err=%v", ce, err)
			}
		}
		b.ReportMetric(float64(st.Queries), "queries")
	})
}

// BenchmarkWarmRelearn — incremental learning: a cold learn of the Google
// profile (random-words + Wp-method conformance equivalence, no ground
// truth — the `prognosis regress` configuration) versus relearning the
// unchanged target warm from the persistent store. The warm run rebuilds
// the whole hypothesis from the persisted query log and pays live queries
// only for the equivalence pass, so it must issue at least 5× fewer live
// queries — asserted here, and exercised end-to-end by the CI
// model-regression job.
func BenchmarkWarmRelearn(b *testing.B) {
	run := func(b *testing.B, dir string) *lab.Result {
		b.Helper()
		res, err := lab.Run(context.Background(), lab.TargetGoogle,
			lab.WithSeed(13), lab.WithConformance(2), lab.WithStore(dir))
		if err != nil {
			b.Fatal(err)
		}
		if res.Machine.NumStates() != 12 {
			b.Fatalf("states = %d, want 12", res.Machine.NumStates())
		}
		return res
	}
	var coldQ, warmQ int64
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldQ = run(b, b.TempDir()).Stats.Queries // fresh store: fully cold
		}
		b.ReportMetric(float64(coldQ), "live-queries")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		cold := run(b, dir) // populate and seal the store
		b.ResetTimer()
		var res *lab.Result
		for i := 0; i < b.N; i++ {
			res = run(b, dir)
		}
		warmQ = res.Stats.Queries
		b.ReportMetric(float64(warmQ), "live-queries")
		if eq, ce := cold.Machine.Equivalent(res.Machine); !eq {
			b.Fatalf("warm relearn diverged on %v", ce)
		}
	})
	if coldQ > 0 && warmQ*5 > coldQ {
		b.Fatalf("warm relearn must issue >=5x fewer live queries than cold: cold %d, warm %d (%.1fx)",
			coldQ, warmQ, float64(coldQ)/float64(warmQ))
	}
}

// BenchmarkUDPQueriesPerSec — the batched UDP hot path: fixed-count query
// throughput over real loopback sockets, batched vs the per-packet legacy
// path, across worker counts, on a clean link and at 5% loss. Every arm
// drives the same 128 handshake queries (reported as the deterministic
// `queries` metric the CI gate compares; `queries/s` is informational), so
// ns/op is wall time for a fixed workload. The batched path must deliver
// at least 1.5x the legacy baseline's throughput at 8 workers. The two
// window=* arms then run a full learn over the impaired link: the adaptive
// in-flight window (AIMD between 2 and 8) must beat an in-flight limit
// fixed at its conservative floor on total wall time.
func BenchmarkUDPQueriesPerSec(b *testing.B) {
	word := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream}
	const totalQueries = 128

	run := func(b *testing.B, workers int, mode transport.PathMode, loss float64) float64 {
		b.Helper()
		setups := make([]*lab.QUICSetup, workers)
		var closers []func() error
		for i := range setups {
			srv := quicsim.NewServer(quicsim.Config{Profile: quicsim.ProfileQuiche, Seed: 7})
			hosted, err := transport.ListenQUICMode(transport.Loopback(), srv, mode)
			if err != nil {
				b.Fatal(err)
			}
			sock := transport.NewQUICClientTransportMode(hosted.Addr(), mode)
			closers = append(closers, sock.Close, hosted.Close)
			var tr reference.Transport = sock
			if loss > 0 {
				tr = netem.New(tr, netem.Config{LossClient: loss, LossServer: loss, Seed: int64(100 + i)})
			}
			cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)
			setups[i] = &lab.QUICSetup{Server: srv, Client: cli}
		}
		defer func() {
			for _, c := range closers {
				c()
			}
		}()
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			var issued int64
			var wg sync.WaitGroup
			for w := range setups {
				wg.Add(1)
				go func(s *lab.QUICSetup) {
					defer wg.Done()
					for atomic.AddInt64(&issued, 1) <= totalQueries {
						if err := s.Reset(); err != nil {
							b.Error(err)
							return
						}
						for _, sym := range word {
							if _, err := s.Step(sym); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(setups[w])
			}
			wg.Wait()
		}
		b.StopTimer()
		qps := float64(totalQueries*b.N) / b.Elapsed().Seconds()
		b.ReportMetric(float64(totalQueries), "queries")
		b.ReportMetric(qps, "queries/s")
		return qps
	}

	qps := make(map[string]float64)
	arms := []struct {
		name    string
		workers int
		mode    transport.PathMode
		loss    float64
	}{
		{"path=legacy/workers=8/loss=0%", 8, transport.PathLegacy, 0},
		{"path=batched/workers=1/loss=0%", 1, transport.PathBatched, 0},
		{"path=batched/workers=4/loss=0%", 4, transport.PathBatched, 0},
		{"path=batched/workers=8/loss=0%", 8, transport.PathBatched, 0},
		{"path=batched/workers=1/loss=5%", 1, transport.PathBatched, 0.05},
		{"path=batched/workers=4/loss=5%", 4, transport.PathBatched, 0.05},
		{"path=batched/workers=8/loss=5%", 8, transport.PathBatched, 0.05},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			qps[arm.name] = run(b, arm.workers, arm.mode, arm.loss)
		})
	}
	legacy, batched := qps["path=legacy/workers=8/loss=0%"], qps["path=batched/workers=8/loss=0%"]
	if legacy > 0 && batched > 0 && batched < 1.5*legacy {
		b.Fatalf("batched path must deliver >=1.5x the unbatched baseline at 8 workers: legacy %.0f q/s, batched %.0f q/s (%.2fx)",
			legacy, batched, batched/legacy)
	}

	// The comparison the adaptive window exists for: a fixed in-flight limit
	// must be provisioned at its safe floor, while AIMD discovers the
	// capacity above it and backs off only on guard escalations.
	windows := []struct {
		name string
		cfg  learn.WindowConfig
	}{
		{"window=adaptive", learn.WindowConfig{Min: 2, Max: 8, Initial: 2}},
		{"window=fixed-min", learn.WindowConfig{Min: 2, Max: 2}},
	}
	wall := make(map[string]time.Duration)
	for _, arm := range windows {
		b.Run(arm.name, func(b *testing.B) {
			var res *lab.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = lab.Run(context.Background(), lab.TargetQuiche,
					lab.WithSeed(13), lab.WithPerfectEquivalence(), lab.WithWorkers(8),
					lab.WithTransport(lab.TransportUDP),
					lab.WithImpairment(netem.Config{LossClient: 0.05, LossServer: 0.05, Seed: 99}),
					lab.WithWindow(arm.cfg))
				if err != nil {
					b.Fatal(err)
				}
				if res.Nondet != nil {
					b.Fatalf("guard gave up: %v", res.Nondet)
				}
				if res.Machine.NumStates() != 8 {
					b.Fatalf("states = %d, want 8", res.Machine.NumStates())
				}
			}
			rm := res.Metrics()
			wall[arm.name] = rm.Duration
			b.ReportMetric(float64(rm.Learner.Queries), "queries")
			b.ReportMetric(rm.Duration.Seconds()*1000, "wall-ms")
			if rm.Window != nil {
				b.ReportMetric(float64(rm.Window.Size), "window-size")
			}
		})
	}
	if a, f := wall["window=adaptive"], wall["window=fixed-min"]; a > 0 && f > 0 && a >= f {
		b.Fatalf("adaptive window (%v) must beat the in-flight limit fixed at its floor (%v) on wall time under 5%% loss", a, f)
	}
}

// BenchmarkHybridPreload — §8 future work implemented: active learning
// with a log-preloaded cache vs a cold cache (live queries reported).
func BenchmarkHybridPreload(b *testing.B) {
	truth := quicsim.GroundTruth(quicsim.ProfileQuiche)
	logs, err := learn.TracesFromWalks(context.Background(), learn.MealyOracle(truth), truth.Inputs(), 300, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			var queries int64
			for i := 0; i < b.N; i++ {
				var st learn.Stats
				cache := learn.NewCache(learn.Counting(learn.MealyOracle(truth), &st), &st)
				if warm {
					for _, lg := range logs {
						if err := cache.Preload(lg); err != nil {
							b.Fatal(err)
						}
					}
				}
				if _, err := learn.NewDTLearner(cache, truth.Inputs()).
					Learn(context.Background(), &learn.ModelOracle{Model: truth}); err != nil {
					b.Fatal(err)
				}
				queries = st.Queries
			}
			b.ReportMetric(float64(queries), "live-queries")
		})
	}
}
