// Quickstart: learn a model of a TCP implementation in a closed-box
// fashion, exactly as §6.1 of the paper does for the Ubuntu kernel stack.
//
// The whole pipeline is three steps: name a registered target, configure
// the experiment with options, and run the learner with a context.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/lab"
)

func main() {
	// 1. The system under learning: the registry knows how to build the
	//    userspace TCP stack behind its instrumented reference client — a
	//    closed box reachable only through binary, checksummed segments.
	//    (lab.Targets() lists everything registered.)
	exp, err := lab.NewExperiment(lab.TargetTCP, lab.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Close()

	// 2. Learn. The context cancels a run mid-round (Ctrl-C handling,
	//    deadlines); here we just run to completion.
	res, err := exp.Learn(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	model := res.Machine

	fmt.Printf("learned the TCP model: %d states, %d transitions\n",
		model.NumStates(), model.NumTransitions())
	fmt.Printf("cost: %d live queries, %d cache hits in %v\n\n",
		res.Stats.Queries, res.Stats.Hits, res.Duration)

	// 3. The 3-way handshake of Fig. 3(b), read off the learned model.
	word := []string{"SYN(?,?,0)", "ACK(?,?,0)"}
	out, _ := model.Run(word)
	fmt.Println("3-way handshake according to the model:")
	for i := range word {
		fmt.Printf("  client: %-18s server: %s\n", word[i], out[i])
	}

	fmt.Println("\nfull model in Graphviz dot:")
	fmt.Println(model.DOT("tcp"))
}
