// Quickstart: learn a model of a TCP implementation in a closed-box
// fashion, exactly as §6.1 of the paper does for the Ubuntu kernel stack.
//
// The whole pipeline is three steps: build the system under learning (the
// TCP server behind the instrumented reference client), pick an abstract
// alphabet, and run the learner.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/reference"
)

func main() {
	// 1. The system under learning: a userspace TCP stack reachable only
	//    through binary, checksummed segments — a closed box.
	sul := lab.NewTCP(1)

	// 2. The abstract alphabet of §6.1: packet flags with payload length,
	//    sequence/ack numbers left to the reference implementation.
	alphabet := reference.TCPAlphabet()

	// 3. Learn.
	exp := &core.Experiment{Alphabet: alphabet, SUL: sul, Seed: 1}
	model, err := exp.Learn()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("learned the TCP model: %d states, %d transitions\n",
		model.NumStates(), model.NumTransitions())
	fmt.Printf("cost: %d live queries, %d cache hits\n\n", exp.Stats.Queries, exp.Stats.Hits)

	// The 3-way handshake of Fig. 3(b), read off the learned model.
	word := []string{"SYN(?,?,0)", "ACK(?,?,0)"}
	out, _ := model.Run(word)
	fmt.Println("3-way handshake according to the model:")
	for i := range word {
		fmt.Printf("  client: %-18s server: %s\n", word[i], out[i])
	}

	fmt.Println("\nfull model in Graphviz dot:")
	fmt.Println(model.DOT("tcp"))
}
