// Modeldiff reproduces the Issue 1 workflow (§6.2.3): learn models of two
// QUIC implementations — here over a real UDP loopback socket pair — and
// compare them. The size gap and the divergence on a retried INITIAL
// (packet-number-space reset) are exactly the observations that led to a
// clarification of the QUIC specification.
//
//	go run ./examples/modeldiff
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/quicsim"
	"repro/internal/reference"
	"repro/internal/transport"
)

func main() {
	google, err := learnOverUDP(quicsim.ProfileGoogle)
	if err != nil {
		log.Fatal(err)
	}
	quiche, err := learnOverUDP(quicsim.ProfileQuiche)
	if err != nil {
		log.Fatal(err)
	}

	report := analysis.Diff("google", google, "quiche", quiche, 3)
	fmt.Print(report.String())

	// The specific divergence behind the RFC discussion: what happens when
	// a client retries the connection, resetting its packet number spaces?
	word := []string{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto}
	og, _ := google.Run(word)
	oq, _ := quiche.Run(word)
	fmt.Println("\npacket-number-space reset (client sends a second INITIAL[CRYPTO]):")
	fmt.Printf("  google: %s\n  quiche: %s\n", og[1], oq[1])
	fmt.Println("\ngoogle aborts the connection; quiche just closes at the handshake")
	fmt.Println("level. The RFC was amended to say a server MAY abort here (§6.2.3).")
}

// learnOverUDP hosts a profile on a loopback UDP socket and learns its
// model across the network path.
func learnOverUDP(profile quicsim.Profile) (*automata.Mealy, error) {
	srv := quicsim.NewServer(quicsim.Config{Profile: profile, Seed: 7})
	hosted, err := transport.ListenQUIC(transport.Loopback(), srv)
	if err != nil {
		return nil, err
	}
	defer hosted.Close()
	tr := transport.NewQUICClientTransport(hosted.Addr())
	defer tr.Close()
	cli := reference.NewQUICClient(reference.QUICClientConfig{Seed: 11}, tr)

	exp := &core.Experiment{
		Alphabet: quicsim.InputAlphabet(),
		SUL:      &udpSUL{srv: srv, cli: cli},
		// Use the specification oracle so the demo recovers the full model
		// quickly; swap for a RandomWordsOracle in a real closed-box run.
		Equivalence: &learn.ModelOracle{Model: quicsim.GroundTruth(profile)},
	}
	fmt.Printf("learning %v over UDP at %s...\n", profile, hosted.Addr())
	return exp.Learn()
}

type udpSUL struct {
	srv *quicsim.Server
	cli *reference.QUICClient
}

func (u *udpSUL) Reset() error {
	u.srv.Reset()
	return u.cli.Reset()
}

func (u *udpSUL) Step(in string) (string, error) { return u.cli.Step(in) }
