// Modeldiff reproduces the Issue 1 workflow (§6.2.3): learn models of two
// QUIC implementations — here over real UDP loopback socket pairs, via the
// registry's UDP transport option — and compare them. The size gap and the
// divergence on a retried INITIAL (packet-number-space reset) are exactly
// the observations that led to a clarification of the QUIC specification.
//
//	go run ./examples/modeldiff
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/lab"
	"repro/internal/quicsim"
)

func main() {
	google, err := learnOverUDP(lab.TargetGoogle)
	if err != nil {
		log.Fatal(err)
	}
	quiche, err := learnOverUDP(lab.TargetQuiche)
	if err != nil {
		log.Fatal(err)
	}

	report := analysis.Diff(analysis.NewModel("google", google), analysis.NewModel("quiche", quiche), 3)
	fmt.Print(report.String())

	// The specific divergence behind the RFC discussion: what happens when
	// a client retries the connection, resetting its packet number spaces?
	word := []string{quicsim.SymInitialCrypto, quicsim.SymInitialCrypto}
	og, _ := google.Run(word)
	oq, _ := quiche.Run(word)
	fmt.Println("\npacket-number-space reset (client sends a second INITIAL[CRYPTO]):")
	fmt.Printf("  google: %s\n  quiche: %s\n", og[1], oq[1])
	fmt.Println("\ngoogle aborts the connection; quiche just closes at the handshake")
	fmt.Println("level. The RFC was amended to say a server MAY abort here (§6.2.3).")
}

// learnOverUDP hosts a target on a loopback UDP socket pair — built by the
// registry's UDP transport option — and learns its model across the
// network path. The specification oracle recovers the full model quickly;
// drop WithPerfectEquivalence for a real closed-box run.
func learnOverUDP(target string) (*automata.Mealy, error) {
	fmt.Printf("learning %s over UDP...\n", target)
	res, err := lab.Run(context.Background(), target,
		lab.WithSeed(7),
		lab.WithTransport(lab.TransportUDP),
		lab.WithPerfectEquivalence(),
	)
	if err != nil {
		return nil, err
	}
	if res.Nondet != nil {
		return nil, fmt.Errorf("%s: unexpected nondeterminism: %v", target, res.Nondet)
	}
	return res.Machine, nil
}
