// Quicbughunt reproduces Issue 2 of the paper (§6.2.4): learning a model
// of the mvfst-profile QUIC server aborts with a nondeterminism report,
// and the follow-up probe shows the server answers post-close packets with
// stateless RESETs only ~82% of the time, with no back-off — a DoS vector
// the developers acknowledged.
//
//	go run ./examples/quicbughunt
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/quicsim"
)

func main() {
	// Step 1: try to learn mvfst like any other target. The nondeterminism
	// check of §5 halts learning and hands us a witness query.
	exp, err := lab.NewExperiment(lab.TargetMvfst, lab.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Close()
	res, err := exp.Learn(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if res.Nondet == nil {
		log.Fatal("expected the nondeterminism check to fire")
	}
	fmt.Println("learning paused: the same query yields different answers.")
	fmt.Printf("witness query (%d symbols), %d distinct responses over %d runs\n\n",
		len(res.Nondet.Word), len(res.Nondet.Observed), res.Nondet.Votes)

	// Step 2: localize. The trigger is a client-sent HANDSHAKE_DONE (a
	// server-only frame): the server closes the connection, then answers
	// further probes with a stateless RESET — sometimes.
	setup := lab.NewQUIC(quicsim.ProfileMvfst, lab.QUICOptions{Seed: 5})
	trigger := []string{quicsim.SymInitialCrypto, quicsim.SymHandshakeHD}

	const probes = 500
	resets := 0
	for i := 0; i < probes; i++ {
		if err := setup.Reset(); err != nil {
			log.Fatal(err)
		}
		for _, sym := range trigger {
			if _, err := setup.Client.Step(sym); err != nil {
				log.Fatal(err)
			}
		}
		out, err := setup.Client.Step(quicsim.SymShortHD)
		if err != nil {
			log.Fatal(err)
		}
		if out == "{RESET(?,?)[]}" {
			resets++
		}
	}
	fmt.Printf("post-close probe answered with RESET in %d/%d runs (%.0f%%; paper: 82%%)\n",
		resets, probes, 100*float64(resets)/probes)

	// Step 3: the DoS angle — every probe is answered afresh, no back-off.
	fmt.Println("\nDoS probe: 10 identical packets to a closed connection:")
	if err := setup.Reset(); err != nil {
		log.Fatal(err)
	}
	for _, sym := range trigger {
		setup.Client.Step(sym) //nolint:errcheck // demo path, checked above
	}
	for i := 0; i < 10; i++ {
		out, _ := setup.Client.Step(quicsim.SymShortHD)
		fmt.Printf("  probe %2d -> %s\n", i+1, out)
	}
	fmt.Println("\nthe server keeps generating RESETs on demand: each costs it a")
	fmt.Println("datagram while the attacker replays one precomputed packet (§6.2.4).")
}
