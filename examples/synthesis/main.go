// Synthesis reproduces Issue 4 (§6.2.6, Appendix B.1): enrich the learned
// Google QUIC model with a register over the Maximum Stream Data field of
// STREAM_DATA_BLOCKED frames. Against the buggy profile the field
// synthesizes to the constant 0 — the placeholder the developers forgot to
// update; against the fixed profile it tracks the granted limit.
//
//	go run ./examples/synthesis
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/quicsim"
	"repro/internal/synth"
)

func main() {
	for _, target := range []string{lab.TargetGoogle, lab.TargetGoogleFixed} {
		fmt.Printf("=== %s ===\n", target)
		if err := analyze(target); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func analyze(target string) error {
	// 1. Learn the abstract model (the control skeleton).
	exp, err := lab.NewExperiment(target, lab.WithSeed(29), lab.WithPerfectEquivalence())
	if err != nil {
		return err
	}
	defer exp.Close()
	res, err := exp.Learn(context.Background())
	if err != nil {
		return err
	}

	// 2. Replay flow-control workloads and harvest the Oracle Table:
	//    concrete packets recorded alongside their abstract symbols.
	profile, err := lab.QUICProfile(target)
	if err != nil {
		return err
	}
	setup := lab.NewQUIC(profile, lab.QUICOptions{Seed: 29})
	words := [][]string{
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortFC, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortStream,
			quicsim.SymShortStream, quicsim.SymShortStream},
		{quicsim.SymInitialCrypto, quicsim.SymHandshakeC, quicsim.SymShortFC,
			quicsim.SymShortStream, quicsim.SymShortStream, quicsim.SymShortStream},
	}
	var traces []synth.Trace
	for _, w := range words {
		tr, err := lab.CollectSDBTrace(setup, w, lab.BlockedOutputLabel)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}

	// 3. Synthesize register update and output terms for the field.
	em, err := synth.Synthesize(lab.SDBProblem(res.Machine, traces))
	if err != nil {
		return err
	}

	// 4. Interrogate the synthesized machine: grant a huge limit, block
	//    the stream, and see what the field does.
	probe := synth.Trace{
		{Input: quicsim.SymInitialCrypto, InVals: []int64{0}},
		{Input: quicsim.SymHandshakeC, InVals: []int64{0}},
		{Input: quicsim.SymShortStream, InVals: []int64{0}},
		{Input: quicsim.SymShortFC, InVals: []int64{50000}},
		{Input: quicsim.SymShortStream, InVals: []int64{0}},
	}
	pred, _ := em.Run(probe)
	field := pred[len(pred)-1][0]
	fmt.Printf("granted limit 50000, then blocked: model predicts Maximum Stream Data = %d\n", field)
	if field == 0 {
		fmt.Println("-> the field is a constant 0: the implementation never updates it (Issue 4)")
	} else {
		fmt.Println("-> the field tracks the granted limit: correct behaviour")
	}
	return nil
}
