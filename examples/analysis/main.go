// Analysis demonstrates the unified analysis plane on the repo's scenario
// bug: the lossy-retransmit target is behaviourally identical to Google
// QUIC on a clean link, but a lossy link flips its broken loss recovery
// into permanent double-send. Learning both targets through a 2%-loss link
// and analysing the models surfaces the bug three independent ways —
// property checking, model diffing, and live witness replay — without ever
// reading the server's code.
//
//	go run ./examples/analysis
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/lab"
	"repro/internal/netem"
)

func main() {
	ctx := context.Background()

	// Learn both targets through the same impaired link. WithWarmup lets
	// the lossy target's cross-connection loss statistics settle into the
	// degraded steady state before learning observes it; WithConformance
	// recovers the full models without a ground-truth oracle.
	learn := func(target string) (*lab.Experiment, *analysis.Model) {
		exp, err := lab.NewExperiment(target,
			lab.WithSeed(13),
			lab.WithWorkers(4),
			lab.WithConformance(2),
			lab.WithWarmup(100),
			lab.WithImpairment(netem.Config{LossClient: 0.02, LossServer: 0.02, Seed: 7}),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := exp.Learn(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if res.Nondet != nil {
			log.Fatalf("%s: unexpected nondeterminism: %v", target, res.Nondet)
		}
		fmt.Printf("learned %s through a 2%%-loss link: %d states\n", target, res.Machine.NumStates())
		return exp, res.Model()
	}
	googleExp, google := learn(lab.TargetGoogle)
	defer googleExp.Close()
	lossyExp, lossy := learn(lab.TargetLossyRetransmit)
	defer lossyExp.Close()

	// 1. Property checking: the model alone convicts the lossy target.
	fmt.Println("\nmodel-level properties (analysis.Builtins):")
	for _, r := range analysis.CheckAll(lossy) {
		if r.OK() {
			fmt.Printf("  PASS %s\n", r.Property.Name())
		} else {
			fmt.Printf("  FAIL %s — %s\n", r.Property.Name(), r.Violation.Detail)
		}
	}

	// 2. Diffing: where exactly do the implementations diverge?
	report := analysis.Diff(google, lossy, 1)
	fmt.Printf("\ndiff: equivalent=%v, %d diverging joint states\n",
		report.Equivalent, len(report.Divergent))
	for _, d := range report.Divergent[:min(3, len(report.Divergent))] {
		fmt.Printf("  at (s%d, s%d) after %d steps: %d diverging inputs\n",
			d.StateA, d.StateB, len(d.Access), len(d.Inputs))
	}

	// 3. Replay: confirm the shortest witness on the wire, against the
	// live replicas the models were learned from.
	w := report.Witnesses[0]
	confirmed, err := analysis.ConfirmWitness(ctx, w, googleExp.Oracle(), lossyExp.Oracle(), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwitness %v replayed live: diverged=%v (models predicted step %d)\n",
		w.Word, confirmed.Diverged, w.FirstDivergence+1)
	fmt.Printf("  google: %s\n  lossy:  %s\n", confirmed.LiveA[confirmed.At], confirmed.LiveB[confirmed.At])
}
