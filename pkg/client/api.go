// Package client is the typed Go client for the prognosisd HTTP/JSON
// API: job submission, status, cancellation, SSE event subscription, and
// artifact retrieval. The wire types live here — internal/server aliases
// them — so the daemon's API has exactly one Go-side definition: the
// server cannot drift from what this client encodes, and external
// tooling (prognosisctl, the E2E tests, CI's daemon-smoke choreography)
// all speak the API through the same structs.
package client

import (
	"fmt"
	"time"

	"repro/internal/learncfg"
)

// Kind names a job's verb — the prognosis subcommands the service
// exposes, plus the monitor cycle.
const (
	KindLearn   = "learn"
	KindDiff    = "diff"
	KindCheck   = "check"
	KindRegress = "regress"
	KindMonitor = "monitor"
)

// State is one stop of the job lifecycle state machine:
//
//	pending → running → done
//	                  ↘ failed
//	pending/running → cancelled        (DELETE /v1/jobs/{id})
//	running → pending                  (daemon shutdown/crash: re-queued)
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Valid reports whether s is a known lifecycle state.
func (s State) Valid() bool {
	switch s {
	case StatePending, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is a job submission: the POST /v1/jobs body. Config carries the
// same knobs as the CLI flags and resolves through the same
// learncfg.Config builder, so a job body and a `prognosis` invocation
// cannot drift. Absent Config fields keep the per-kind defaults (diff
// jobs default to the mildly impaired 4-worker link, exactly like
// `prognosis diff`).
type Spec struct {
	Kind string `json:"kind"`
	// Target names the registry target of learn and check jobs.
	Target string `json:"target,omitempty"`
	// TargetA/TargetB name the two sides of a diff job.
	TargetA string          `json:"target_a,omitempty"`
	TargetB string          `json:"target_b,omitempty"`
	Config  learncfg.Config `json:"config"`
	// Witnesses bounds the distinguishing traces a diff collects (and a
	// regress writes per drifted target). Default 5.
	Witnesses int `json:"witnesses,omitempty"`
	// Replay confirms a diff's first witness against both live targets
	// (majority vote per step), like `prognosis diff`. Default true.
	Replay *bool `json:"replay,omitempty"`
	// Property is an extra LTLf property for check jobs; Depth bounds its
	// exploration (default 4).
	Property string `json:"property,omitempty"`
	Depth    int    `json:"depth,omitempty"`
	// Manifest is the regression manifest path of regress and monitor
	// jobs (resolved on the daemon host; default
	// internal/analysis/testdata/regress.json). Targets optionally
	// restricts it to a comma-separated subset.
	Manifest string `json:"manifest,omitempty"`
	Targets  string `json:"targets,omitempty"`
}

// NewLearnSpec returns a learn job for target with default config.
func NewLearnSpec(target string) Spec {
	return Spec{Kind: KindLearn, Target: target, Config: learncfg.Default(learncfg.Defaults{})}
}

// NewCheckSpec returns a check job for target with default config.
func NewCheckSpec(target string) Spec {
	return Spec{Kind: KindCheck, Target: target, Config: learncfg.Default(learncfg.Defaults{Conformance: 2})}
}

// NewDiffSpec returns a diff job between two targets with default config
// (the mildly impaired 4-worker link `prognosis diff` uses).
func NewDiffSpec(targetA, targetB string) Spec {
	return Spec{Kind: KindDiff, TargetA: targetA, TargetB: targetB,
		Config: learncfg.Default(learncfg.Defaults{Conformance: 2, Loss: 0.02, Workers: 4})}
}

// NewRegressSpec returns a regress job over the given manifest path ("" =
// daemon default).
func NewRegressSpec(manifest string) Spec {
	return Spec{Kind: KindRegress, Manifest: manifest, Config: learncfg.Default(learncfg.Defaults{})}
}

// NewMonitorSpec returns one monitor cycle over the given manifest path
// ("" = daemon default): every cell is warm-relearned, snapshotted into
// the lineage journal, and compared against its previous snapshot.
func NewMonitorSpec(manifest string) Spec {
	return Spec{Kind: KindMonitor, Manifest: manifest, Config: learncfg.Default(learncfg.Defaults{})}
}

// ReplayWitness reports whether a diff job should replay its first
// witness (the Replay default is true).
func (s *Spec) ReplayWitness() bool { return s.Replay == nil || *s.Replay }

// Validate rejects specs no job can run, before anything is journaled.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindLearn, KindCheck:
		if s.Target == "" {
			return fmt.Errorf("%s job needs a target", s.Kind)
		}
		if _, err := learncfg.ParseTargets(s.Target); err != nil {
			return err
		}
		if s.TargetA != "" || s.TargetB != "" {
			return fmt.Errorf("%s job takes target, not target_a/target_b", s.Kind)
		}
	case KindDiff:
		if s.TargetA == "" || s.TargetB == "" {
			return fmt.Errorf("diff job needs target_a and target_b")
		}
		if _, err := learncfg.ParseTargets(s.TargetA + "," + s.TargetB); err != nil {
			return err
		}
	case KindRegress, KindMonitor:
		if s.Target != "" || s.TargetA != "" || s.TargetB != "" {
			return fmt.Errorf("%s job selects targets with the targets field, not target/target_a/target_b", s.Kind)
		}
	case "":
		return fmt.Errorf("job needs a kind: learn, diff, check, regress, or monitor")
	default:
		return fmt.Errorf("unknown job kind %q (want learn, diff, check, regress, or monitor)", s.Kind)
	}
	if s.Witnesses < 0 {
		return fmt.Errorf("witnesses %d < 0", s.Witnesses)
	}
	if s.Depth < 0 {
		return fmt.Errorf("depth %d < 0", s.Depth)
	}
	return s.Config.Validate()
}

// Summary is the kind-specific result a finished job reports in its
// status (and journals, so a restarted daemon still serves it).
type Summary struct {
	// Learn / check / diff side A.
	States      int   `json:"states,omitempty"`
	Transitions int   `json:"transitions,omitempty"`
	Queries     int64 `json:"queries,omitempty"`
	Symbols     int64 `json:"symbols,omitempty"`
	Hits        int64 `json:"hits,omitempty"`
	// GuardEscalations counts the §5 adaptive guard's vote-budget raises
	// across the job's learns.
	GuardEscalations int64         `json:"guard_escalations,omitempty"`
	Duration         time.Duration `json:"duration,omitempty"`
	// Nondet marks a learn that halted on the §5 nondeterminism analysis
	// (a reported outcome, not a failure); NondetWord is its witness query.
	Nondet     bool     `json:"nondet,omitempty"`
	NondetWord []string `json:"nondet_word,omitempty"`
	// Diff.
	Equivalent *bool `json:"equivalent,omitempty"`
	Witnesses  int   `json:"witnesses,omitempty"`
	// Confirmed reports whether the replayed witness diverged on the wire.
	Confirmed *bool `json:"confirmed,omitempty"`
	// Check.
	Violations int `json:"violations,omitempty"`
	// Regress / monitor.
	RegressTargets int      `json:"regress_targets,omitempty"`
	Drifted        []string `json:"drifted,omitempty"`
	// Monitor: drift alarms raised this cycle (drifted cells whose
	// witness was confirmed live).
	Alarms int `json:"alarms,omitempty"`
}

// Status is the JSON view of a job served by GET /v1/jobs/{id}.
type Status struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	State     State      `json:"state"`
	Spec      Spec       `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Summary   *Summary   `json:"summary,omitempty"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Attempts  int        `json:"attempts,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
}

// JobStateChanged is the hub's job-lifecycle meta event, streamed over
// SSE inline with the learning events (event name "job_state").
type JobStateChanged struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Error carries the failure message on a failed transition.
	Error string `json:"error,omitempty"`
}

// Kind implements learn.Event.
func (JobStateChanged) Kind() string { return "job_state" }

// DriftAlarm is the monitor's alarm event (SSE event name
// "drift_alarm"): a monitored cell's freshly learned model diverged from
// its previous lineage snapshot AND the shortest distinguishing witness
// reproduced the divergence against the live target.
type DriftAlarm struct {
	// Cell names the drifted (target × config) cell.
	Cell string `json:"cell"`
	// Witness is the shortest input word distinguishing the two models.
	Witness []string `json:"witness"`
	// Expected/Got are the outputs the previous and current model produce
	// on the witness.
	Expected []string `json:"expected,omitempty"`
	Got      []string `json:"got,omitempty"`
	// Confirmed reports that the witness was replayed against the live
	// target and the divergence reproduced (always true for alarms the
	// monitor raises; unconfirmed drift is recorded in lineage only).
	Confirmed bool `json:"confirmed"`
	// Diff summarizes the model divergence (state/transition deltas and
	// witness count from analysis.Diff).
	Diff string `json:"diff,omitempty"`
	// ModelVersion/LogVersion identify the lineage snapshot that raised
	// the alarm.
	ModelVersion int   `json:"model_version"`
	LogVersion   int64 `json:"log_version"`
}

// Kind implements learn.Event.
func (DriftAlarm) Kind() string { return "drift_alarm" }

// Stats is the /v1/stats payload: queue shape, throughput, and the
// event hub's drop accounting.
type Stats struct {
	Uptime   string        `json:"uptime"`
	Jobs     map[State]int `json:"jobs"`
	Resumed  int           `json:"resumed,omitempty"`
	Finished int64         `json:"finished"`
	Draining bool          `json:"draining,omitempty"`
	Totals   SummaryTotals `json:"totals"`
	Hub      HubStats      `json:"events"`
}

// SummaryTotals aggregates the learning counters across finished jobs.
// Queries, Symbols, Hits, GuardEscalations, and BusySeconds are
// monotonic: they only ever grow, so deltas between two scrapes are
// meaningful, and QueriesPerSec (Queries/BusySeconds) is stable across
// concurrent scrapes instead of drifting with in-flight jobs.
type SummaryTotals struct {
	Queries          int64   `json:"queries"`
	Symbols          int64   `json:"symbols"`
	Hits             int64   `json:"cache_hits"`
	HitRate          float64 `json:"cache_hit_rate"`
	GuardEscalations int64   `json:"guard_escalations"`
	// BusySeconds is the summed wall time of finished jobs.
	BusySeconds   float64 `json:"busy_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// HubStats is the SSE hub's observability snapshot, under /v1/stats.
type HubStats struct {
	Subscribers int64 `json:"subscribers"`
	Published   int64 `json:"events_published"`
	Dropped     int64 `json:"events_dropped"`
}
