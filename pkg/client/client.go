package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one prognosisd instance. The zero value is not usable;
// construct with New. Methods are safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test servers). The default client has no timeout — SSE
// subscriptions and long polls are expected to outlive any fixed one;
// bound calls with the context instead.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7077").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx daemon response, carrying the decoded error body.
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("prognosisd: %s (HTTP %d)", e.Message, e.Code)
}

// do issues the request and decodes a JSON success body into out (when
// non-nil). Error responses decode the {"error": ...} envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	return &APIError{Code: resp.StatusCode, Message: msg}
}

// Submit posts a job and returns its accepted status (state pending,
// ID assigned).
func (c *Client) Submit(ctx context.Context, spec Spec) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job fetches one job's status snapshot.
func (c *Client) Job(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Jobs lists every job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]Status, error) {
	var out struct {
		Jobs []Status `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel cancels a job, returning the state it was in when the request
// landed (a pending job goes terminal immediately; a running one when
// its runner observes the cancellation).
func (c *Client) Cancel(ctx context.Context, id string) (State, error) {
	var out struct {
		Was State `json:"was"`
	}
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out.Was, err
}

// Wait polls the job until it reaches a terminal state (or ctx ends),
// returning the final status. Poll <= 0 defaults to 200ms.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Model downloads a job's learned model artifact. Side selects a diff
// job's side ("a" or "b", "" for a learn/check job's single model);
// format is "json" (default) or "dot".
func (c *Client) Model(ctx context.Context, id, side, format string) ([]byte, error) {
	q := ""
	if side != "" {
		q = "?side=" + side
	}
	if format != "" {
		if q == "" {
			q = "?"
		} else {
			q += "&"
		}
		q += "format=" + format
	}
	return c.raw(ctx, "/v1/jobs/"+id+"/model"+q)
}

// Witness downloads the job's witness/report artifact.
func (c *Client) Witness(ctx context.Context, id string) ([]byte, error) {
	return c.raw(ctx, "/v1/jobs/"+id+"/witness")
}

// Metrics scrapes the daemon's Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/metrics")
}

func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthz probes liveness: nil while the daemon accepts jobs, an
// APIError (503) once draining.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// ServerStats fetches /v1/stats.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Event is one SSE frame from a job's event stream: the typed kind
// (round_started, cache_snapshot, guard_escalated, job_state,
// drift_alarm, ...) and the raw JSON payload.
type Event struct {
	Kind string
	Data json.RawMessage
}

// JobState decodes a "job_state" event's payload.
func (e Event) JobState() (JobStateChanged, bool) {
	var js JobStateChanged
	if e.Kind != js.Kind() || json.Unmarshal(e.Data, &js) != nil {
		return JobStateChanged{}, false
	}
	return js, true
}

// Drift decodes a "drift_alarm" event's payload.
func (e Event) Drift() (DriftAlarm, bool) {
	var d DriftAlarm
	if e.Kind != d.Kind() || json.Unmarshal(e.Data, &d) != nil {
		return DriftAlarm{}, false
	}
	return d, true
}

// EventStream is a live SSE subscription to one job's event stream.
// Call Next until it returns io.EOF (the job finished and the daemon
// closed the stream), then Close.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Events subscribes to a job's SSE stream. The daemon replays the
// buffered history first (so subscribing after completion still yields
// the whole run), then streams live events until the job finishes.
func (c *Client) Events(ctx context.Context, id string) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event, or io.EOF when the daemon ends the
// stream.
func (s *EventStream) Next() (Event, error) {
	var e Event
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			e.Kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			e.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "":
			if e.Kind != "" || len(e.Data) > 0 {
				return e, nil
			}
		}
	}
	if err := s.sc.Err(); err != nil {
		return e, err
	}
	return e, io.EOF
}

// Close releases the subscription's connection.
func (s *EventStream) Close() error { return s.body.Close() }
