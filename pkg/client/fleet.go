package client

import (
	"context"
	"net/http"
	"net/url"
	"time"

	"repro/internal/learncfg"
)

// This file is the fleet plane's wire surface: worker registration and
// heartbeats, coordinator status, and campaign submission/tracking. Like
// the job API above, the types live here and internal/fleet aliases
// them, so the coordinator's HTTP surface has exactly one Go-side
// definition shared by prognosisctl, the worker join loop, and the
// fleet tests.

// WorkerInfo identifies one worker daemon to the coordinator: a stable
// name (the ring member identity), the base URL the coordinator reaches
// its job API on, and a placement weight (vnode multiplier; <= 0 means
// 1).
type WorkerInfo struct {
	Name   string `json:"name"`
	URL    string `json:"url"`
	Weight int    `json:"weight,omitempty"`
}

// Worker lifecycle states as the coordinator sees them.
const (
	WorkerLive = "live"
	WorkerDead = "dead"
)

// WorkerStatus is the coordinator's view of one registered worker.
type WorkerStatus struct {
	WorkerInfo
	// State is live while heartbeats arrive inside the lease, dead once
	// the lease expires (or job traffic fails repeatedly).
	State string `json:"state"`
	// HeartbeatAge is seconds since the last heartbeat (or join).
	HeartbeatAge float64 `json:"heartbeat_age"`
	// CellsAssigned counts cells currently submitted to this worker and
	// not yet terminal; CellsDone counts cells it completed; Requeued
	// counts cells taken back from it after death.
	CellsAssigned int `json:"cells_assigned"`
	CellsDone     int `json:"cells_done"`
	Requeued      int `json:"requeued"`
}

// FleetCampaignSpec is a sharded campaign submission: the POST
// /v1/fleet/campaigns body. The coordinator expands it into one named
// cell per (target × seed × impairment-grid point) — the same grid
// construction `prognosis learn` applies locally — and scatters the
// cells across live workers by ring placement.
type FleetCampaignSpec struct {
	// Name labels the campaign (artifacts land under it); "" derives one
	// from the ID.
	Name string `json:"name,omitempty"`
	// Targets names the registry targets to learn (comma syntax of
	// learncfg.ParseTargets is not applied here; list them).
	Targets []string `json:"targets"`
	// Losses/Dups/Reorders span the impairment grid (empty grid = one
	// clean cell). The clean baseline cell is always first.
	Losses   []float64 `json:"losses,omitempty"`
	Dups     []float64 `json:"dups,omitempty"`
	Reorders []float64 `json:"reorders,omitempty"`
	// Seeds replicates the grid per seed; empty means [Config.Seed].
	Seeds []int64 `json:"seeds,omitempty"`
	// Config carries the shared learning knobs (learner, workers, rtt,
	// warmup, ...). Per-cell impairment and seed fields are overwritten
	// during expansion.
	Config learncfg.Config `json:"config"`
}

// Campaign lifecycle states.
const (
	CampaignRunning = "running"
	CampaignMerging = "merging"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
)

// FleetCampaignStatus is the coordinator's view of one sharded
// campaign, served by GET /v1/fleet/campaigns/{id}.
type FleetCampaignStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Cells is the expanded cell count; Done/Failed tally terminal
	// cells; Requeued counts re-assignments after worker death.
	Cells    int `json:"cells"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Requeued int `json:"requeued"`
	// PerWorker maps worker name → cells that worker completed.
	PerWorker map[string]int `json:"per_worker,omitempty"`
	// Learned/Nondet split the done cells by outcome (nondeterminism
	// verdicts are results, not failures).
	Learned int `json:"learned"`
	Nondet  int `json:"nondet"`
	// Error carries the failure cause of a failed campaign.
	Error string `json:"error,omitempty"`
	// MergedStore and MergedCheckpoint are coordinator-local paths of
	// the merge stage's outputs, set once the campaign is done.
	MergedStore      string    `json:"merged_store,omitempty"`
	MergedCheckpoint string    `json:"merged_checkpoint,omitempty"`
	Created          time.Time `json:"created"`
	// Summary is the campaign's per-cell outcome table (the
	// lab.Campaign Summarize view), set once the campaign is done.
	Summary string `json:"summary,omitempty"`
}

// Terminal reports whether the campaign has finished (merged or failed).
func (s *FleetCampaignStatus) Terminal() bool {
	return s.State == CampaignDone || s.State == CampaignFailed
}

// FleetStatus is the whole-fleet snapshot served by GET
// /v1/fleet/status.
type FleetStatus struct {
	Workers   []WorkerStatus        `json:"workers"`
	Campaigns []FleetCampaignStatus `json:"campaigns"`
	// Requeued is the all-campaign total of cell re-assignments.
	Requeued int `json:"requeued"`
}

// FleetJoin registers (or re-registers) a worker with the coordinator.
// Joining is idempotent: a rejoin under the same name revives a dead
// worker and refreshes its lease.
func (c *Client) FleetJoin(ctx context.Context, info WorkerInfo) error {
	return c.do(ctx, http.MethodPost, "/v1/fleet/join", info, nil)
}

// FleetHeartbeat refreshes a worker's lease. The coordinator answers
// 404 for names it does not know (lost state, e.g. a restart) — the
// worker loop reacts by rejoining.
func (c *Client) FleetHeartbeat(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodPost, "/v1/fleet/heartbeat",
		struct {
			Name string `json:"name"`
		}{Name: name}, nil)
}

// FleetStatus fetches the fleet snapshot.
func (c *Client) FleetStatus(ctx context.Context) (FleetStatus, error) {
	var st FleetStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet/status", nil, &st)
	return st, err
}

// SubmitFleetCampaign submits a sharded campaign and returns its
// accepted status (ID assigned, state running).
func (c *Client) SubmitFleetCampaign(ctx context.Context, spec FleetCampaignSpec) (FleetCampaignStatus, error) {
	var st FleetCampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/fleet/campaigns", spec, &st)
	return st, err
}

// FleetCampaign fetches one campaign's status.
func (c *Client) FleetCampaign(ctx context.Context, id string) (FleetCampaignStatus, error) {
	var st FleetCampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/fleet/campaigns/"+id, nil, &st)
	return st, err
}

// WaitFleetCampaign polls the campaign until it reaches a terminal
// state (or ctx ends). Poll <= 0 defaults to 200ms.
func (c *Client) WaitFleetCampaign(ctx context.Context, id string, poll time.Duration) (FleetCampaignStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.FleetCampaign(ctx, id)
		if err != nil {
			return st, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// StoreKeys lists the run keys present in the daemon's shared query
// store — the worker-side surface the coordinator's merge stage reads.
func (c *Client) StoreKeys(ctx context.Context) ([]string, error) {
	var out struct {
		Keys []string `json:"keys"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/fleet/store", nil, &out)
	return out.Keys, err
}

// StoreLog downloads one run key's raw query log (jsonlog bytes) from
// the daemon's shared store.
func (c *Client) StoreLog(ctx context.Context, key string) ([]byte, error) {
	return c.raw(ctx, "/v1/fleet/store/"+url.PathEscape(key))
}
